//! Event-driven TCP transport: hundreds of ranks multiplexed per
//! process.
//!
//! The thread-per-rank substrates ([`Cluster`](crate::Cluster),
//! [`SocketCluster`](crate::socket::SocketCluster)) stop scaling near
//! `n ≈ 64` on small hosts: every simulated processor costs an OS
//! thread, and the scheduler thrashes long before the algorithms get
//! interesting. This module rebuilds the data plane around *readiness*
//! instead of threads:
//!
//! * **Topology.** Ranks are grouped into simulated *nodes* of
//!   [`ClusterConfig::node_size`] ranks each. Intra-node traffic rides
//!   the in-process channel path (one [`Mailbox`] per rank, zero
//!   syscalls); inter-node traffic crosses one loopback **TCP stream
//!   per node pair**, shared by every rank on the two nodes.
//! * **Framing.** Messages fragment at
//!   [`FRAG_PAYLOAD`](crate::frame::FRAG_PAYLOAD) into the same frame
//!   header the datagram transport uses (see [`crate::frame`]), wrapped
//!   in an 8-byte `[len, dst]` prefix so the stream demultiplexes by
//!   destination rank.
//! * **Reactor.** All streams run nonblocking and are driven by a
//!   single reactor thread sweeping a readiness loop — the portable
//!   stand-in for `poll(2)`, which `std` does not expose — flushing
//!   per-link outboxes and decoding inbound frames into per-rank
//!   mailboxes. Idle sweeps back off exponentially, so a quiet fabric
//!   costs (almost) no CPU.
//! * **Execution.** [`TcpScaleCluster`] interprets lowered
//!   [`RankProgram`]s — the same programs `bruck-collectives` executes
//!   on the threaded substrate — with a small worker pool: each worker
//!   owns a contiguous slice of ranks and drives their endpoint state
//!   machines from message readiness. OS threads per process are
//!   `O(workers)`, not `O(n)`, so `n = 1024` runs where 1024 threads
//!   would not.
//!
//! The reliability stack is unchanged: sliding-window ARQ, adaptive
//! RTO, the heartbeat watchdog, and deadline clamps
//! ([`crate::reliable`], [`crate::deadline`]) wrap the TCP transport
//! exactly as they wrap channels and datagram sockets, and fault
//! injection ([`crate::fault`]) applies to every transmission.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bruck_model::planner::IndexPlan;
use bruck_model::program::{ProgramOp, RankProgram};
use bruck_model::tuning::DEFAULT_DRAIN_GRACE;

use crate::cluster::ClusterConfig;
use crate::deadline::Deadline;
use crate::error::NetError;
use crate::failure::FailureDetector;
use crate::fault::{FaultPlan, FaultyTransport, RoundClock, SocketFault};
use crate::frame::{decode_frame, encode_frame_into, Assembler, FRAG_PAYLOAD, HEADER};
use crate::mailbox::{MailSender, Mailbox};
use crate::membership::{Membership, RecoveryPolicy};
use crate::message::{payload_checksum, Message, Tag};
use crate::metrics::{FabricStats, RankMetrics, RunMetrics};
use crate::reliable::ReliableTransport;
use crate::transport::Transport;

/// Stream prefix ahead of every frame: `u32` frame length + `u32`
/// destination rank (both little-endian).
const STREAM_PREFIX: usize = 8;

/// Reactor read chunk: one full frame's worth per `read` call.
const READ_CHUNK: usize = HEADER + FRAG_PAYLOAD;

/// Ceiling for the reactor's idle-sweep nap.
const IDLE_NAP_MAX: Duration = Duration::from_micros(500);

/// Default per-outage reconnect budget: attempts before a node pair is
/// declared dead and a node-level eviction is raised.
const DEFAULT_RECONNECT_BUDGET: u32 = 6;

/// Default first-retry backoff; doubles per failed attempt (jittered).
const DEFAULT_BACKOFF_BASE: Duration = Duration::from_micros(200);

/// Default backoff ceiling.
const DEFAULT_BACKOFF_CAP: Duration = Duration::from_millis(20);

/// Default ceiling on one reconnect handshake (connect + pair-id
/// exchange); a peer that cannot complete it in time burns one budget
/// attempt.
const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// Default per-stream outbox byte cap: past this, frames are shed (the
/// ARQ layer re-drives them) so a dead peer cannot OOM the reactor.
const DEFAULT_OUTBOX_CAP: usize = 8 << 20;

/// Healing, fault-injection, and lifecycle knobs for a [`TcpFabric`].
///
/// [`Default`] gives the PR 9 fabric: no healing (the first stream
/// error fails the run), no injection, 1s drain grace.
pub struct FabricConfig {
    /// Heal broken streams instead of failing the fabric. Requires an
    /// ARQ layer above (the fabric discards in-flight bytes on
    /// teardown and relies on retransmission for gap repair).
    pub heal: bool,
    /// Reconnect attempts per outage before the pair is declared dead.
    pub reconnect_budget: u32,
    /// First-retry backoff; doubles per failed attempt, jittered.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Budget for one reconnect handshake.
    pub handshake_timeout: Duration,
    /// Per-stream outbox byte cap (backpressure; sheds past it).
    pub outbox_cap: usize,
    /// How long the reactor keeps sweeping after shutdown is requested,
    /// waiting for outboxes to drain (hang backstop only — drained
    /// fabrics exit immediately). See
    /// [`WireTuning::drain_grace`](bruck_model::tuning::WireTuning::drain_grace).
    pub drain_grace: Duration,
    /// Socket-level fault events to inject inside the fabric.
    pub faults: Arc<FaultPlan>,
    /// Round progress used to time round-gated socket events (absent:
    /// events fire immediately).
    pub round_clock: Option<Arc<RoundClock>>,
    /// Failure detector that node-level evictions are published to.
    pub detector: Option<Arc<FailureDetector>>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            heal: false,
            reconnect_budget: DEFAULT_RECONNECT_BUDGET,
            backoff_base: DEFAULT_BACKOFF_BASE,
            backoff_cap: DEFAULT_BACKOFF_CAP,
            handshake_timeout: DEFAULT_HANDSHAKE_TIMEOUT,
            outbox_cap: DEFAULT_OUTBOX_CAP,
            drain_grace: DEFAULT_DRAIN_GRACE,
            faults: Arc::new(FaultPlan::default()),
            round_clock: None,
            detector: None,
        }
    }
}

/// splitmix64 step — the workspace's deterministic RNG idiom, used for
/// backoff jitter.
fn mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Index of the unordered node pair `(a, b)`, `a < b`, among the
/// `nodes·(nodes−1)/2` pairs.
fn pair_index(nodes: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < nodes);
    a * (2 * nodes - a - 1) / 2 + (b - a - 1)
}

/// The [`Pair`] carrying traffic between the nodes of ranks `src` and
/// `dst` (`None` for intra-node or out-of-range ranks).
fn pair_for(
    pairs: &mut [Pair],
    nodes: usize,
    node_size: usize,
    src: usize,
    dst: usize,
) -> Option<&mut Pair> {
    let (sa, sb) = (src / node_size, dst / node_size);
    if sa == sb || sa >= nodes || sb >= nodes {
        return None;
    }
    let (a, b) = if sa < sb { (sa, sb) } else { (sb, sa) };
    pairs.get_mut(pair_index(nodes, a, b))
}

/// Atomic mirror of [`FabricStats`], bumped by the reactor and the
/// senders, snapshotted after the run.
#[derive(Default)]
struct FabricStatsShared {
    link_failures: AtomicU64,
    reconnects: AtomicU64,
    reconnect_failures: AtomicU64,
    pairs_evicted: AtomicU64,
    backoff_ns: AtomicU64,
    injected_resets: AtomicU64,
    injected_stalls: AtomicU64,
    injected_handshake_drops: AtomicU64,
    outbox_shed_bytes: AtomicU64,
}

impl FabricStatsShared {
    fn snapshot(&self) -> FabricStats {
        FabricStats {
            link_failures: self.link_failures.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            reconnect_failures: self.reconnect_failures.load(Ordering::Relaxed),
            pairs_evicted: self.pairs_evicted.load(Ordering::Relaxed),
            backoff_ns: self.backoff_ns.load(Ordering::Relaxed),
            injected_resets: self.injected_resets.load(Ordering::Relaxed),
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
            injected_handshake_drops: self.injected_handshake_drops.load(Ordering::Relaxed),
            outbox_shed_bytes: self.outbox_shed_bytes.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the rank transports (producers) and the reactor
/// (consumer): one byte outbox per stream *end*, plus the first fabric
/// error.
struct FabricShared {
    node_size: usize,
    /// `2` outboxes per node pair: `[2p]` is written by the lower node
    /// of pair `p` (the connecting end), `[2p+1]` by the higher (the
    /// accepting end).
    outboxes: Vec<Mutex<Vec<u8>>>,
    /// Cheap has-data flags so the reactor skips locking idle outboxes.
    dirty: Vec<AtomicBool>,
    /// First wire error observed by the reactor (or a sender); fails
    /// every subsequent send so the run aborts instead of hanging.
    error: Mutex<Option<String>>,
    nodes: usize,
    /// Outbox byte cap: senders shed frames past it (the ARQ layer
    /// re-drives them) so a dead peer cannot grow an outbox unboundedly.
    outbox_cap: usize,
    /// Per-pair tombstones: reconnect budget exhausted, sends to the
    /// pair are blackholed and the pair no longer gates shutdown.
    pair_dead: Vec<AtomicBool>,
    /// Nodes evicted at the fabric level (budget-exhausted pairs).
    dead_nodes: Mutex<Vec<usize>>,
    /// Shutdown drain grace, nanoseconds (settable late: the scale
    /// executor caps it with the adaptive-RTO linger hint).
    drain_grace_ns: AtomicU64,
    stats: FabricStatsShared,
}

impl FabricShared {
    /// The outbox a message from `src_node` to `dst_node` is staged in.
    fn outbox_for(&self, src_node: usize, dst_node: usize) -> usize {
        if src_node < dst_node {
            2 * pair_index(self.nodes, src_node, dst_node)
        } else {
            2 * pair_index(self.nodes, dst_node, src_node) + 1
        }
    }

    fn fail(&self, msg: String) {
        let mut slot = self.error.lock().expect("fabric error lock");
        if slot.is_none() {
            *slot = Some(msg);
        }
    }

    fn check(&self) -> Result<(), NetError> {
        match self.error.lock().expect("fabric error lock").as_ref() {
            Some(e) => Err(NetError::App(format!("tcp fabric: {e}"))),
            None => Ok(()),
        }
    }

    fn drain_grace(&self) -> Duration {
        Duration::from_nanos(self.drain_grace_ns.load(Ordering::Relaxed))
    }
}

/// One stream end owned by the reactor.
struct Link {
    stream: TcpStream,
    /// The outbox this end transmits.
    idx: usize,
    /// Bytes being written (drained from the outbox), and the write
    /// offset into them.
    out: Vec<u8>,
    out_at: usize,
    /// Inbound bytes not yet parsed into whole frames.
    rbuf: Vec<u8>,
}

impl Link {
    fn fresh(stream: TcpStream, idx: usize) -> Self {
        Self {
            stream,
            idx,
            out: Vec::new(),
            out_at: 0,
            rbuf: Vec::new(),
        }
    }
}

/// A round-gated socket fault armed on one pair.
enum ArmedKind {
    /// Tear the pair down (TCP RST analogue).
    Reset,
    /// Freeze the pair's I/O for the duration (half-open analogue).
    Stall(Duration),
    /// Tear down now and after each of the next `n` heals.
    Flap(u32),
}

/// Connection state machine for one node pair:
/// connected → reconnecting(backoff) → evicted. Both stream ends live
/// here — the fabric is loopback, so the reactor owns both sides.
struct Pair {
    p: usize,
    lo_node: usize,
    hi_node: usize,
    /// `Some` while connected; `None` while down. Teardown drops both
    /// ends and their partial buffers: the stream restarts at a record
    /// boundary on both sides and the ARQ layer re-drives the gap.
    ends: Option<(Link, Link)>,
    /// When the current outage began (backoff dwell accounting).
    down_since: Option<Instant>,
    /// Reconnect attempts made this outage.
    attempts: u32,
    next_attempt: Instant,
    /// Budget exhausted: blackholed, no longer swept.
    dead: bool,
    /// Injected: fail the next N reconnect handshakes.
    hs_drops_left: u32,
    /// Injected: tear down again after each of the next N heals.
    flaps_left: u32,
    /// Injected: skip all I/O on the pair until this instant.
    stall_until: Option<Instant>,
    /// Round-gated socket events not yet fired: `(round, kind)`.
    armed: Vec<(u64, ArmedKind)>,
}

impl Pair {
    fn new(p: usize, lo_node: usize, hi_node: usize, lo: Link, hi: Link) -> Self {
        Self {
            p,
            lo_node,
            hi_node,
            ends: Some((lo, hi)),
            down_since: None,
            attempts: 0,
            next_attempt: Instant::now(),
            dead: false,
            hs_drops_left: 0,
            flaps_left: 0,
            stall_until: None,
            armed: Vec::new(),
        }
    }
}

/// Why a link sweep stopped early.
enum LinkErr {
    /// Stream-level I/O failure (reset, EOF, write error): healable.
    Io(String),
    /// Protocol violation (bad frame, unknown rank): never healable.
    Fatal(String),
}

/// Write/read/parse one stream end. Returns whether any bytes moved.
fn sweep_link(
    shared: &FabricShared,
    link: &mut Link,
    chunk: &mut [u8],
    asms: &mut [Assembler],
    senders: &[MailSender],
) -> Result<bool, LinkErr> {
    let n = senders.len();
    let mut moved = false;
    // Refill the write cursor from the outbox (allocation swap: the
    // drained buffer goes back as the senders' next arena).
    if link.out_at == link.out.len() && shared.dirty[link.idx].swap(false, Ordering::AcqRel) {
        link.out.clear();
        link.out_at = 0;
        let mut outbox = shared.outboxes[link.idx].lock().expect("outbox lock");
        std::mem::swap(&mut *outbox, &mut link.out);
    }
    while link.out_at < link.out.len() {
        match link.stream.write(&link.out[link.out_at..]) {
            Ok(0) => return Err(LinkErr::Io("stream closed mid-write".into())),
            Ok(k) => {
                link.out_at += k;
                moved = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(LinkErr::Io(format!("write: {e}"))),
        }
    }
    loop {
        match link.stream.read(chunk) {
            Ok(0) => return Err(LinkErr::Io("stream EOF".into())),
            Ok(k) => {
                link.rbuf.extend_from_slice(&chunk[..k]);
                moved = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(LinkErr::Io(format!("read: {e}"))),
        }
    }
    // Parse whole frames off the front of the read buffer.
    let mut at = 0usize;
    while link.rbuf.len().saturating_sub(at) >= STREAM_PREFIX {
        let flen = u32::from_le_bytes(link.rbuf[at..at + 4].try_into().expect("4 bytes")) as usize;
        if link.rbuf.len() - at < STREAM_PREFIX + flen {
            break;
        }
        let dst =
            u32::from_le_bytes(link.rbuf[at + 4..at + 8].try_into().expect("4 bytes")) as usize;
        let body = &link.rbuf[at + STREAM_PREFIX..at + STREAM_PREFIX + flen];
        match decode_frame(body) {
            Ok(frame) if dst < n => {
                asms[dst].accept(frame);
                while let Some(m) = asms[dst].pending.pop_front() {
                    // A dropped receiver (aborted run) is not an
                    // error: same fire-and-forget semantics as the
                    // channel transport.
                    let _ = senders[dst].send(m);
                }
            }
            Ok(_) => {
                return Err(LinkErr::Fatal(format!(
                    "frame addressed to unknown rank {dst}"
                )))
            }
            Err(e) => return Err(LinkErr::Fatal(format!("decode: {e}"))),
        }
        at += STREAM_PREFIX + flen;
    }
    if at > 0 {
        link.rbuf.copy_within(at.., 0);
        link.rbuf.truncate(link.rbuf.len() - at);
    }
    Ok(moved)
}

/// Everything the reactor thread owns besides the pairs themselves.
struct Reactor {
    shared: Arc<FabricShared>,
    senders: Vec<MailSender>,
    /// Kept for reconnects; `None` disables healing.
    listener: Option<(TcpListener, SocketAddr)>,
    heal: bool,
    budget: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    handshake_timeout: Duration,
    round_clock: Option<Arc<RoundClock>>,
    detector: Option<Arc<FailureDetector>>,
    /// Backoff-jitter RNG state (deterministic seed).
    rng: u64,
    /// Dead-pair count per node: the eviction victim heuristic.
    node_dead: Vec<u32>,
}

impl Reactor {
    /// Jittered exponential backoff after `attempts` failures this
    /// outage: `base·2^(attempts−1)` capped, plus up to 50% jitter.
    fn backoff(&mut self, attempts: u32) -> Duration {
        let exp = attempts.saturating_sub(1).min(20);
        let slice = self
            .backoff_cap
            .min(self.backoff_base.saturating_mul(1u32 << exp.min(16)));
        let jitter_ns = if slice.as_nanos() == 0 {
            0
        } else {
            mix64(&mut self.rng) % (slice.as_nanos() as u64 / 2 + 1)
        };
        slice + Duration::from_nanos(jitter_ns)
    }

    /// The slowest alive rank's completed-round count — the fabric-wide
    /// round used to time injected socket events. Without a round
    /// clock, events fire immediately.
    fn current_round(&self) -> u64 {
        let Some(clock) = &self.round_clock else {
            return u64::MAX;
        };
        let n = self.senders.len();
        (0..n)
            .filter(|&r| self.detector.as_ref().is_none_or(|d| !d.is_dead(r)))
            .map(|r| clock.completed(r))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Tear a pair down: drop both ends (and their partial buffers) and
    /// enter the reconnecting state. With healing off the caller fails
    /// the fabric instead.
    fn teardown(&mut self, pair: &mut Pair, injected: bool) {
        pair.ends = None;
        pair.down_since = Some(Instant::now());
        pair.attempts = 0;
        pair.next_attempt = Instant::now();
        self.shared
            .stats
            .link_failures
            .fetch_add(1, Ordering::Relaxed);
        if injected {
            self.shared
                .stats
                .injected_resets
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Budget exhausted: kill the pair, pick the victim node (the one
    /// with more dead pairs; ties to the higher id), publish its ranks
    /// to the failure detector, and blackhole every pair touching it.
    fn evict(&mut self, pairs: &mut [Pair], at: usize) {
        let (lo, hi) = (pairs[at].lo_node, pairs[at].hi_node);
        pairs[at].dead = true;
        self.shared.pair_dead[pairs[at].p].store(true, Ordering::Relaxed);
        self.shared
            .stats
            .pairs_evicted
            .fetch_add(1, Ordering::Relaxed);
        self.node_dead[lo] += 1;
        self.node_dead[hi] += 1;
        let victim = if self.node_dead[lo] > self.node_dead[hi] {
            lo
        } else {
            hi
        };
        {
            let mut dead = self.shared.dead_nodes.lock().expect("dead nodes lock");
            if !dead.contains(&victim) {
                dead.push(victim);
            }
        }
        if let Some(detector) = &self.detector {
            let ns = self.shared.node_size;
            for rank in victim * ns..(victim + 1) * ns {
                detector.mark_dead(rank);
            }
        }
        // Remaining traffic to the victim is pointless: blackhole its
        // other pairs so they stop gating drain and stop reconnecting.
        for other in pairs.iter_mut() {
            if !other.dead && (other.lo_node == victim || other.hi_node == victim) {
                other.dead = true;
                other.ends = None;
                self.shared.pair_dead[other.p].store(true, Ordering::Relaxed);
            }
        }
    }

    /// One reconnect attempt for a downed pair: connect, exchange the
    /// pair id, install fresh links. Consumes injected handshake drops
    /// and fires pending flaps.
    fn try_reconnect(&mut self, pairs: &mut [Pair], at: usize) {
        let p = pairs[at].p;
        pairs[at].attempts += 1;
        let outcome = if pairs[at].hs_drops_left > 0 {
            pairs[at].hs_drops_left -= 1;
            self.shared
                .stats
                .injected_handshake_drops
                .fetch_add(1, Ordering::Relaxed);
            Err("injected handshake drop".to_string())
        } else {
            let (listener, addr) = self.listener.as_ref().expect("healing requires listener");
            reconnect_handshake(listener, *addr, p, self.handshake_timeout)
        };
        match outcome {
            Ok((lo, hi)) => {
                let down = pairs[at]
                    .down_since
                    .take()
                    .map_or(0, |t| t.elapsed().as_nanos() as u64);
                self.shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .stats
                    .backoff_ns
                    .fetch_add(down, Ordering::Relaxed);
                pairs[at].ends = Some((Link::fresh(lo, 2 * p), Link::fresh(hi, 2 * p + 1)));
                pairs[at].attempts = 0;
                if pairs[at].flaps_left > 0 {
                    // Flapping link: the heal itself triggers the next
                    // injected reset.
                    pairs[at].flaps_left -= 1;
                    self.teardown(&mut pairs[at], true);
                }
            }
            Err(_) => {
                self.shared
                    .stats
                    .reconnect_failures
                    .fetch_add(1, Ordering::Relaxed);
                if pairs[at].attempts >= self.budget {
                    self.evict(pairs, at);
                } else {
                    let wait = self.backoff(pairs[at].attempts);
                    pairs[at].next_attempt = Instant::now() + wait;
                }
            }
        }
    }
}

/// Connect + pair-id exchange for one healing pair, bounded by
/// `timeout`. Stale backlog connections (from abandoned attempts of
/// other pairs) are drained and discarded by the id check.
fn reconnect_handshake(
    listener: &TcpListener,
    addr: SocketAddr,
    p: usize,
    timeout: Duration,
) -> Result<(TcpStream, TcpStream), String> {
    let deadline = Instant::now() + timeout;
    let mut lo = TcpStream::connect(addr).map_err(|e| format!("reconnect connect: {e}"))?;
    lo.write_all(&(p as u32).to_le_bytes())
        .map_err(|e| format!("reconnect handshake send: {e}"))?;
    let hi = loop {
        match listener.accept() {
            Ok((mut cand, _)) => {
                let left = deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                cand.set_read_timeout(Some(left))
                    .map_err(|e| format!("reconnect set_read_timeout: {e}"))?;
                let mut hs = [0u8; 4];
                match cand.read_exact(&mut hs) {
                    Ok(()) if u32::from_le_bytes(hs) as usize == p => break cand,
                    // Wrong id or a dead stale connection: discard it
                    // and keep accepting until our own connect shows up.
                    Ok(()) | Err(_) => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err("reconnect handshake timeout".into());
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            Err(e) => return Err(format!("reconnect accept: {e}")),
        }
    };
    for s in [&lo, &hi] {
        s.set_nodelay(true)
            .map_err(|e| format!("reconnect set_nodelay: {e}"))?;
        s.set_nonblocking(true)
            .map_err(|e| format!("reconnect set_nonblocking: {e}"))?;
    }
    Ok((lo, hi))
}

/// The readiness sweep: flush every dirty outbox, drain every readable
/// stream, decode frames, reassemble, deliver to per-rank mailboxes —
/// and, when healing, drive every pair's connection state machine.
fn reactor_loop(mut rx: Reactor, mut pairs: Vec<Pair>, shutdown: &AtomicBool) {
    let n = rx.senders.len();
    let mut asms: Vec<Assembler> = (0..n).map(Assembler::new).collect();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut idle: u32 = 0;
    let mut shutdown_seen: Option<Instant> = None;
    loop {
        let mut moved = false;
        let mut drained = true;
        let has_armed = pairs.iter().any(|p| !p.armed.is_empty());
        let cur_round = if has_armed { rx.current_round() } else { 0 };
        for at in 0..pairs.len() {
            if pairs[at].dead {
                continue; // blackholed: never gates drain
            }
            // Fire round-gated injected socket events.
            if !pairs[at].armed.is_empty() {
                let mut fired_reset = false;
                let pair = &mut pairs[at];
                let mut i = 0;
                while i < pair.armed.len() {
                    if pair.armed[i].0 <= cur_round {
                        match pair.armed.swap_remove(i).1 {
                            ArmedKind::Reset => fired_reset = true,
                            ArmedKind::Flap(flaps) => {
                                fired_reset = true;
                                pair.flaps_left += flaps;
                            }
                            ArmedKind::Stall(d) => {
                                pair.stall_until = Some(Instant::now() + d);
                                rx.shared
                                    .stats
                                    .injected_stalls
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        i += 1;
                    }
                }
                if fired_reset && pairs[at].ends.is_some() {
                    rx.teardown(&mut pairs[at], true);
                }
            }
            // Half-open stall: the link looks alive but moves nothing.
            if let Some(until) = pairs[at].stall_until {
                if Instant::now() < until {
                    let pair = &pairs[at];
                    if let Some((lo, hi)) = &pair.ends {
                        if lo.out_at < lo.out.len()
                            || hi.out_at < hi.out.len()
                            || rx.shared.dirty[lo.idx].load(Ordering::Acquire)
                            || rx.shared.dirty[hi.idx].load(Ordering::Acquire)
                        {
                            drained = false;
                        }
                    }
                    continue;
                }
                pairs[at].stall_until = None;
            }
            if pairs[at].ends.is_none() {
                // Reconnecting: traffic for the pair is parked in its
                // outboxes, so the fabric is not drained.
                if rx.shared.dirty[2 * pairs[at].p].load(Ordering::Acquire)
                    || rx.shared.dirty[2 * pairs[at].p + 1].load(Ordering::Acquire)
                {
                    drained = false;
                }
                if rx.heal && Instant::now() >= pairs[at].next_attempt {
                    rx.try_reconnect(&mut pairs, at);
                    moved = true;
                }
                continue;
            }
            let mut failed: Option<LinkErr> = None;
            {
                let pair = &mut pairs[at];
                let (lo, hi) = pair.ends.as_mut().expect("checked connected");
                for link in [lo, hi] {
                    match sweep_link(&rx.shared, link, &mut chunk, &mut asms, &rx.senders) {
                        Ok(m) => moved |= m,
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
            }
            match failed {
                Some(LinkErr::Fatal(msg)) => {
                    rx.shared.fail(msg);
                    return;
                }
                Some(LinkErr::Io(msg)) => {
                    if rx.heal {
                        rx.teardown(&mut pairs[at], false);
                        drained = false;
                    } else if msg == "stream EOF" {
                        // Healing off: peer end torn down, nothing more
                        // will come on this stream (legacy shutdown
                        // race) — not an error.
                    } else {
                        rx.shared.fail(msg);
                        return;
                    }
                }
                None => {
                    let pair = &pairs[at];
                    let (lo, hi) = pair.ends.as_ref().expect("checked connected");
                    for link in [lo, hi] {
                        if link.out_at < link.out.len()
                            || rx.shared.dirty[link.idx].load(Ordering::Acquire)
                            || !link.rbuf.is_empty()
                        {
                            drained = false;
                        }
                    }
                }
            }
        }
        if shutdown.load(Ordering::Acquire) {
            let seen = *shutdown_seen.get_or_insert_with(Instant::now);
            if drained || seen.elapsed() > rx.shared.drain_grace() {
                return;
            }
        }
        if moved {
            idle = 0;
        } else {
            // Nothing was ready anywhere: back off so a quiet fabric
            // does not spin a core, but stay well under the reliability
            // layer's RTO so a wakeup never looks like loss.
            idle = idle.saturating_add(1);
            if idle < 8 {
                std::thread::yield_now();
            } else {
                let nap = Duration::from_micros(50 << (idle - 8).min(4));
                std::thread::sleep(nap.min(IDLE_NAP_MAX));
            }
        }
    }
}

/// The shared TCP data plane: node-pair loopback streams, per-rank
/// mailboxes, and the reactor thread driving them.
///
/// Dropping the fabric (or calling [`TcpFabric::shutdown`]) flushes
/// outstanding outboxes and joins the reactor.
pub struct TcpFabric {
    shared: Arc<FabricShared>,
    stop: Arc<AtomicBool>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl TcpFabric {
    /// Build the fabric for `n` ranks grouped into nodes of `node_size`
    /// and return one [`TcpRankTransport`] per rank.
    ///
    /// # Errors
    ///
    /// [`NetError::App`] when `node_size` does not evenly partition the
    /// ranks, and on socket setup failures.
    pub fn new(n: usize, node_size: usize) -> Result<(Self, Vec<TcpRankTransport>), NetError> {
        Self::with_config(n, node_size, FabricConfig::default())
    }

    /// [`new`](Self::new) with explicit healing / fault-injection /
    /// lifecycle knobs.
    ///
    /// # Errors
    ///
    /// See [`new`](Self::new).
    pub fn with_config(
        n: usize,
        node_size: usize,
        config: FabricConfig,
    ) -> Result<(Self, Vec<TcpRankTransport>), NetError> {
        if n == 0 || node_size == 0 || !n.is_multiple_of(node_size) {
            return Err(NetError::App(format!(
                "node_size {node_size} must evenly partition {n} ranks"
            )));
        }
        let nodes = n / node_size;
        let npairs = nodes * (nodes - 1) / 2;
        fn app(stage: &'static str) -> impl Fn(std::io::Error) -> NetError {
            move |e| NetError::App(format!("{stage}: {e}"))
        }

        let mut senders = Vec::with_capacity(n);
        let mut mailboxes = Vec::with_capacity(n);
        for rank in 0..n {
            let (tx, mb) = Mailbox::new(rank);
            senders.push(tx);
            mailboxes.push(mb);
        }

        // One loopback stream per node pair. Setup is sequential —
        // connect, then accept — with a pair-id handshake so an
        // accepted stream is never mismatched.
        let mut pairs = Vec::with_capacity(npairs);
        let mut keep_listener = None;
        if npairs > 0 {
            let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(app("tcp bind"))?;
            let addr = listener.local_addr().map_err(app("tcp local_addr"))?;
            let mut p = 0usize;
            for a in 0..nodes {
                for b in (a + 1)..nodes {
                    let mut lo = TcpStream::connect(addr).map_err(app("tcp connect"))?;
                    lo.write_all(&(p as u32).to_le_bytes())
                        .map_err(app("tcp handshake send"))?;
                    let (mut hi, _) = listener.accept().map_err(app("tcp accept"))?;
                    let mut hs = [0u8; 4];
                    hi.read_exact(&mut hs).map_err(app("tcp handshake recv"))?;
                    if u32::from_le_bytes(hs) as usize != p {
                        return Err(NetError::App("tcp handshake pair mismatch".into()));
                    }
                    for s in [&lo, &hi] {
                        s.set_nodelay(true).map_err(app("tcp set_nodelay"))?;
                        s.set_nonblocking(true)
                            .map_err(app("tcp set_nonblocking"))?;
                    }
                    pairs.push(Pair::new(
                        p,
                        a,
                        b,
                        Link::fresh(lo, 2 * p),
                        Link::fresh(hi, 2 * p + 1),
                    ));
                    p += 1;
                }
            }
            if config.heal {
                // Reconnects re-handshake through the original
                // listener; nonblocking so the reactor's accept polls.
                listener
                    .set_nonblocking(true)
                    .map_err(app("tcp listener set_nonblocking"))?;
                keep_listener = Some((listener, addr));
            }
        }

        // Arm injected socket-level events: rank pairs map to node
        // pairs (intra-node events are meaningless here and ignored).
        for fault in config.faults.socket_faults() {
            let (src, dst, arm) = match *fault {
                SocketFault::Reset { src, dst, round } => {
                    (src, dst, Some((round, ArmedKind::Reset)))
                }
                SocketFault::HalfOpen {
                    src,
                    dst,
                    round,
                    millis,
                } => (
                    src,
                    dst,
                    Some((round, ArmedKind::Stall(Duration::from_millis(millis)))),
                ),
                SocketFault::Flap {
                    src,
                    dst,
                    round,
                    flaps,
                } => (src, dst, Some((round, ArmedKind::Flap(flaps)))),
                SocketFault::HandshakeDrop { src, dst, drops } => {
                    if let Some(pair) = pair_for(&mut pairs, nodes, node_size, src, dst) {
                        pair.hs_drops_left += drops;
                    }
                    (src, dst, None)
                }
            };
            if let Some(arm) = arm {
                if let Some(pair) = pair_for(&mut pairs, nodes, node_size, src, dst) {
                    pair.armed.push(arm);
                }
            }
        }

        let shared = Arc::new(FabricShared {
            node_size,
            outboxes: (0..2 * npairs).map(|_| Mutex::new(Vec::new())).collect(),
            dirty: (0..2 * npairs).map(|_| AtomicBool::new(false)).collect(),
            error: Mutex::new(None),
            nodes,
            outbox_cap: config.outbox_cap,
            pair_dead: (0..npairs).map(|_| AtomicBool::new(false)).collect(),
            dead_nodes: Mutex::new(Vec::new()),
            drain_grace_ns: AtomicU64::new(config.drain_grace.as_nanos() as u64),
            stats: FabricStatsShared::default(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let reactor = if npairs > 0 {
            let rx = Reactor {
                shared: Arc::clone(&shared),
                senders: senders.clone(),
                listener: keep_listener,
                heal: config.heal,
                budget: config.reconnect_budget.max(1),
                backoff_base: config.backoff_base,
                backoff_cap: config.backoff_cap,
                handshake_timeout: config.handshake_timeout,
                round_clock: config.round_clock,
                detector: config.detector,
                rng: 0x1ceb_00da ^ (n as u64) << 16 ^ nodes as u64,
                node_dead: vec![0; nodes],
            };
            let stop2 = Arc::clone(&stop);
            Some(
                std::thread::Builder::new()
                    .name("bruck-tcp-reactor".into())
                    .spawn(move || reactor_loop(rx, pairs, &stop2))
                    .map_err(|e| NetError::App(format!("spawn reactor: {e}")))?,
            )
        } else {
            None
        };

        let transports = mailboxes
            .into_iter()
            .enumerate()
            .map(|(rank, mailbox)| TcpRankTransport {
                rank,
                node: rank / node_size,
                peers: senders.clone(),
                mailbox,
                shared: Arc::clone(&shared),
                next_msg_id: 0,
                send_buf: Vec::new(),
            })
            .collect();
        Ok((
            Self {
                shared,
                stop,
                reactor,
            },
            transports,
        ))
    }

    /// OS threads the fabric itself owns (the reactor; `0` for a
    /// single-node fabric with no TCP streams).
    #[must_use]
    pub fn threads(&self) -> usize {
        usize::from(self.reactor.is_some())
    }

    /// First wire error, if the reactor or a sender hit one.
    #[must_use]
    pub fn error(&self) -> Option<String> {
        self.shared.error.lock().expect("fabric error lock").clone()
    }

    /// Connection-lifecycle counters so far (healing, backoff,
    /// injection). Keeps counting until the reactor joins.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.shared.stats.snapshot()
    }

    /// Ranks evicted at the fabric level: every rank of every node
    /// whose pair exhausted its reconnect budget.
    #[must_use]
    pub fn dead_ranks(&self) -> Vec<usize> {
        let nodes = self.shared.dead_nodes.lock().expect("dead nodes lock");
        let ns = self.shared.node_size;
        let mut ranks: Vec<usize> = nodes
            .iter()
            .flat_map(|&node| node * ns..(node + 1) * ns)
            .collect();
        ranks.sort_unstable();
        ranks
    }

    /// Cap the shutdown drain grace (e.g. with the reliability layer's
    /// adaptive-RTO linger hint) before calling
    /// [`shutdown`](Self::shutdown).
    pub fn set_drain_grace(&self, grace: Duration) {
        self.shared
            .drain_grace_ns
            .store(grace.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Flush outstanding traffic (bounded by a short grace period) and
    /// join the reactor. Called by `Drop`; explicit form for callers
    /// that want the error.
    pub fn shutdown(mut self) -> Option<String> {
        self.stop_and_join();
        self.error()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A rank's connection to the TCP fabric: intra-node sends go straight
/// to the destination mailbox, inter-node sends are framed into the
/// node-pair stream's outbox for the reactor to flush.
pub struct TcpRankTransport {
    rank: usize,
    node: usize,
    peers: Vec<MailSender>,
    mailbox: Mailbox,
    shared: Arc<FabricShared>,
    next_msg_id: u64,
    /// Reusable outbound frame buffer: one allocation serves every send.
    send_buf: Vec<u8>,
}

impl TcpRankTransport {
    /// The rank this transport serves.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's simulated node id.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }
}

impl Transport for TcpRankTransport {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        self.shared.check()?;
        let dst_node = msg.dst / self.shared.node_size;
        if dst_node == self.node {
            // Intra-node fast path: no serialization, no syscalls.
            let _ = self.peers[msg.dst].send(msg);
            return Ok(());
        }
        let outbox_idx = self.shared.outbox_for(self.node, dst_node);
        if self.shared.pair_dead[outbox_idx / 2].load(Ordering::Relaxed) {
            // Evicted pair: blackhole. The failure detector already
            // carries the node-level verdict; senders must not wedge.
            return Ok(());
        }
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let count = if msg.payload.is_empty() {
            1
        } else {
            msg.payload.len().div_ceil(FRAG_PAYLOAD)
        } as u32;
        let mut shed: u64 = 0;
        let mut appended = false;
        let mut outbox = self.shared.outboxes[outbox_idx]
            .lock()
            .expect("outbox lock");
        for idx in 0..count {
            let chunk = if msg.payload.is_empty() {
                &[][..]
            } else {
                let at = idx as usize * FRAG_PAYLOAD;
                &msg.payload[at..msg.payload.len().min(at + FRAG_PAYLOAD)]
            };
            let mut frame = std::mem::take(&mut self.send_buf);
            encode_frame_into(
                &mut frame,
                msg.src,
                msg.tag,
                msg_id,
                idx,
                count,
                msg.arrival,
                msg.seq,
                msg.ack,
                msg.checksum,
                chunk,
            );
            let record = STREAM_PREFIX + frame.len();
            if outbox.len() + record > self.shared.outbox_cap {
                // Backpressure: past the cap the frame is shed, which
                // the ARQ layer above sees as loss and re-drives. A
                // reconnecting (or dead-and-undetected) peer therefore
                // bounds memory instead of growing the outbox forever.
                shed += record as u64;
            } else {
                outbox.extend_from_slice(&(frame.len() as u32).to_le_bytes());
                outbox.extend_from_slice(&(msg.dst as u32).to_le_bytes());
                outbox.extend_from_slice(&frame);
                appended = true;
            }
            self.send_buf = frame;
        }
        drop(outbox);
        if appended {
            self.shared.dirty[outbox_idx].store(true, Ordering::Release);
        }
        if shed > 0 {
            self.shared
                .stats
                .outbox_shed_bytes
                .fetch_add(shed, Ordering::Relaxed);
        }
        Ok(())
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        self.mailbox.recv_match(from, tag, timeout)
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        Ok(self.mailbox.recv_any(timeout))
    }

    fn wait_any(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.mailbox.wait_any(timeout);
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn purge(&mut self) -> usize {
        self.mailbox.purge()
    }
}

/// What a [`TcpScaleCluster`] run produces.
#[derive(Debug)]
pub struct ScaleOutput {
    /// Per-rank output buffers, indexed by rank.
    pub results: Vec<Vec<u8>>,
    /// Folded communication metrics (per-rank counters + wire stats).
    pub metrics: RunMetrics,
    /// Worker threads the executor used.
    pub workers: usize,
    /// Total OS threads the run held (workers + reactor) — the scaling
    /// claim: `O(workers)`, not `O(n)`.
    pub threads: usize,
    /// Communication rounds each rank executed.
    pub rounds: usize,
}

/// What [`TcpScaleCluster::run_resilient`] produces: the successful
/// attempt's output plus the membership history that got there —
/// the scale-path mirror of
/// [`ResilientOutput`](crate::cluster::ResilientOutput).
#[derive(Debug)]
pub struct ScaleResilientOutput {
    /// Output of the successful attempt; `results[i]` belongs to
    /// original rank `survivors[i]` and is dense over the survivors.
    pub output: ScaleOutput,
    /// Original ranks that participated in the successful attempt,
    /// ascending.
    pub survivors: Vec<usize>,
    /// Attempts used, including the successful one.
    pub attempts: usize,
    /// Ranks that were evicted and later readmitted.
    pub rejoined: Vec<usize>,
    /// Membership view the successful attempt ran under.
    pub view_id: u64,
}

/// Per-rank execution state owned by exactly one worker.
struct RankCtx {
    rank: usize,
    program: RankProgram,
    transport: Box<dyn Transport>,
    work: Vec<u8>,
    scratch: Vec<u8>,
    metrics: RankMetrics,
}

/// Cross-worker coordination for one scale run.
struct ScaleShared {
    abort: AtomicBool,
    error: Mutex<Option<NetError>>,
    finished: AtomicUsize,
}

impl ScaleShared {
    fn fail(&self, e: NetError) {
        let mut slot = self.error.lock().expect("scale error lock");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::SeqCst);
    }
}

/// What one scale attempt produced: the run result, the dense ranks
/// the failure detector declared dead (the resilient driver's eviction
/// input), and the fabric's lifecycle counters — available even when
/// the attempt failed, so resilient runs fold healing work from every
/// attempt.
struct Attempt {
    result: Result<ScaleOutput, NetError>,
    failed: Vec<usize>,
    stats: FabricStats,
}

impl Attempt {
    /// An attempt that died before the fabric existed.
    fn abort(e: NetError) -> Self {
        Self {
            result: Err(e),
            failed: Vec::new(),
            stats: FabricStats::default(),
        }
    }
}

/// The event-driven executor: interprets lowered [`RankProgram`]s over
/// the TCP fabric with a bounded worker pool instead of a thread per
/// rank.
#[derive(Debug)]
pub struct TcpScaleCluster;

impl TcpScaleCluster {
    /// Run the index plan as an all-to-all over `cfg.n` ranks grouped
    /// by [`ClusterConfig::node_size`], with `inputs[rank]` the `n·b`
    /// send buffer of each rank. Honors `cfg.ports` (lowering width),
    /// `cfg.timeout` (per-round patience), `cfg.deadline` (whole-run
    /// budget), `cfg.reliability` (ARQ + watchdog; the window is
    /// clamped up to the round count so the lockstep executor can never
    /// wedge on its own backpressure), and `cfg.faults` (wire fault
    /// injection).
    ///
    /// # Errors
    ///
    /// [`NetError::App`] on shape mismatches or unlowerable plans;
    /// transport, timeout, deadline, and failure-detector verdicts
    /// propagate.
    pub fn run(
        cfg: &ClusterConfig,
        plan: &IndexPlan,
        block: usize,
        inputs: &[Vec<u8>],
    ) -> Result<ScaleOutput, NetError> {
        Self::run_with_workers(cfg, plan, block, inputs, None)
    }

    /// [`run`](Self::run) with an explicit worker count (defaults to
    /// the host's available parallelism, capped at 8).
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Propagates worker-thread panics.
    pub fn run_with_workers(
        cfg: &ClusterConfig,
        plan: &IndexPlan,
        block: usize,
        inputs: &[Vec<u8>],
        workers: Option<usize>,
    ) -> Result<ScaleOutput, NetError> {
        Self::run_attempt(cfg, plan, block, inputs, workers).result
    }

    /// One full execution over a fresh fabric. Besides the run result,
    /// returns the dense ranks the failure detector declared dead —
    /// the resilient driver's eviction input. When any rank died, the
    /// verdict is always [`NetError::RanksFailed`] over that set, so
    /// every caller (and every seed of a chaos soak) sees the same
    /// cluster-consistent failure, never a rank-local `Timeout`.
    fn run_attempt(
        cfg: &ClusterConfig,
        plan: &IndexPlan,
        block: usize,
        inputs: &[Vec<u8>],
        workers: Option<usize>,
    ) -> Attempt {
        let n = cfg.n;
        if inputs.len() != n {
            return Attempt::abort(NetError::App(format!(
                "{} input buffers for {n} ranks",
                inputs.len()
            )));
        }
        for (rank, input) in inputs.iter().enumerate() {
            if input.len() != n * block {
                return Attempt::abort(NetError::App(format!(
                    "rank {rank}: input is {} bytes, want n·b = {}",
                    input.len(),
                    n * block
                )));
            }
        }
        if n == 1 {
            return Attempt {
                result: Ok(ScaleOutput {
                    results: vec![inputs[0].clone()],
                    metrics: RunMetrics {
                        per_rank: vec![RankMetrics::default()],
                        ..RunMetrics::default()
                    },
                    workers: 0,
                    threads: 0,
                    rounds: 0,
                }),
                failed: Vec::new(),
                stats: FabricStats::default(),
            };
        }

        let programs: Result<Vec<RankProgram>, NetError> = (0..n)
            .map(|rank| RankProgram::lower(plan, n, rank, block, cfg.ports).map_err(NetError::App))
            .collect();
        let programs = match programs {
            Ok(p) => p,
            Err(e) => return Attempt::abort(e),
        };
        // The lowering is SPMD: every rank must agree on the op
        // schedule's shape, or the lockstep interpretation is undefined.
        let ops_len = programs[0].ops.len();
        for p in &programs[1..] {
            let aligned = p.ops.len() == ops_len
                && p.ops.iter().zip(&programs[0].ops).all(|(a, b)| {
                    matches!(
                        (a, b),
                        (ProgramOp::Permute(_), ProgramOp::Permute(_))
                            | (ProgramOp::Round(_), ProgramOp::Round(_))
                    )
                });
            if !aligned {
                return Attempt::abort(NetError::App(format!(
                    "plan {} lowered to misaligned per-rank programs",
                    plan.label()
                )));
            }
        }
        let rounds = programs[0].rounds();

        let node_size = cfg.node_size.unwrap_or(n);
        let detector = Arc::new(FailureDetector::new(n));
        let round_clock = Arc::new(RoundClock::new(n));
        // Healing needs an ARQ layer to re-drive the bytes a teardown
        // discards; injected socket faults need healing to be
        // observable at all, so either turns it on.
        let fab_cfg = FabricConfig {
            heal: cfg
                .healing
                .unwrap_or(cfg.reliability.is_some() || cfg.faults.has_socket_faults()),
            drain_grace: cfg
                .reliability
                .map_or(DEFAULT_DRAIN_GRACE, |rel| rel.wire.drain_grace),
            faults: Arc::clone(&cfg.faults),
            round_clock: Some(Arc::clone(&round_clock)),
            detector: Some(Arc::clone(&detector)),
            ..FabricConfig::default()
        };
        let (fabric, raw_transports) = match TcpFabric::with_config(n, node_size, fab_cfg) {
            Ok(pair) => pair,
            Err(e) => return Attempt::abort(e),
        };
        let fab_shared = Arc::clone(&fabric.shared);
        let wire_layer = cfg.faults.needs_wire_layer();
        let shared_expiry = cfg.deadline.map(|budget| (Instant::now() + budget, budget));
        let transports: Vec<Box<dyn Transport>> = raw_transports
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                let mut t: Box<dyn Transport> = Box::new(t);
                if wire_layer {
                    t = Box::new(FaultyTransport::new(
                        t,
                        Arc::clone(&cfg.faults),
                        Arc::clone(&round_clock),
                    ));
                }
                if let Some(rel) = cfg.reliability {
                    let mut rel = rel;
                    // The executor posts at most one frame per (src,
                    // dst) link per round and pumps acks while it waits,
                    // but a window smaller than the lag between workers
                    // could fill and block a send against a receiver the
                    // same worker owns — a self-deadlock. One frame per
                    // round bounds in-flight by the round count, so this
                    // clamp makes backpressure unreachable without
                    // changing the protocol.
                    rel.wire = rel.wire.with_window(rel.wire.window.max(rounds + 2));
                    let deadline = Deadline::new();
                    if let Some((at, budget)) = shared_expiry {
                        deadline.arm_at(at, budget);
                    }
                    t = Box::new(
                        ReliableTransport::new(t, rank, n, rel, Arc::clone(&detector))
                            .with_deadline(deadline),
                    );
                }
                t
            })
            .collect();

        let mut ctxs: Vec<RankCtx> = programs
            .into_iter()
            .zip(transports)
            .enumerate()
            .map(|(rank, (program, transport))| RankCtx {
                rank,
                program,
                transport,
                work: inputs[rank].clone(),
                scratch: vec![0u8; n * block],
                metrics: RankMetrics::default(),
            })
            .collect();

        let want = workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map_or(1, |p| p.get())
                    .min(8)
            })
            .clamp(1, n);
        let per = n.div_ceil(want);
        let mut chunks: Vec<Vec<RankCtx>> = Vec::new();
        while !ctxs.is_empty() {
            let rest = ctxs.split_off(per.min(ctxs.len()));
            chunks.push(std::mem::replace(&mut ctxs, rest));
        }
        let w = chunks.len();

        let shared = ScaleShared {
            abort: AtomicBool::new(false),
            error: Mutex::new(None),
            finished: AtomicUsize::new(0),
        };
        let shared_ref = &shared;
        let round_clock_ref = &round_clock;
        let collected: Vec<ChunkOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        run_chunk(
                            chunk,
                            block,
                            cfg.timeout,
                            shared_expiry,
                            wire_layer,
                            shared_ref,
                            w,
                            round_clock_ref,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scale worker panicked"))
                .collect()
        });

        // Scale the shutdown drain grace with the adaptive-RTO linger
        // hint, exactly as the thread-per-rank linger does: the
        // configured grace is the ceiling, a confident (small) RTO
        // shrinks it.
        let linger = collected.iter().filter_map(|(_, hint)| *hint).max();
        if let Some(hint) = linger {
            fabric.set_drain_grace(hint.min(fab_shared.drain_grace()));
        }
        let reactor_threads = fabric.threads();
        if let Some(wire) = fabric.shutdown() {
            if let Ok(mut slot) = shared.error.lock() {
                if slot.is_none() {
                    *slot = Some(NetError::App(format!("tcp fabric: {wire}")));
                }
            }
        }
        let fabric_stats = fab_shared.stats.snapshot();
        let failed = detector.snapshot();
        if !failed.is_empty() {
            // Cluster-consistent verdict: any detector death (ARQ retry
            // exhaustion or fabric-level eviction) outranks whichever
            // rank-local error happened to land first.
            return Attempt {
                result: Err(NetError::RanksFailed {
                    ranks: failed.clone(),
                }),
                failed,
                stats: fabric_stats,
            };
        }
        if let Some(e) = shared.error.into_inner().expect("scale error lock") {
            return Attempt {
                result: Err(e),
                failed,
                stats: fabric_stats,
            };
        }

        let mut results = vec![Vec::new(); n];
        let mut per_rank = vec![RankMetrics::default(); n];
        for (rank, out, metrics) in collected.into_iter().flat_map(|(ranks, _)| ranks) {
            results[rank] = out;
            per_rank[rank] = metrics;
        }
        Attempt {
            result: Ok(ScaleOutput {
                results,
                metrics: RunMetrics {
                    per_rank,
                    fabric: fabric_stats,
                    ..RunMetrics::default()
                },
                workers: w,
                threads: w + reactor_threads,
                rounds,
            }),
            failed: Vec::new(),
            stats: fabric_stats,
        }
    }

    /// [`run`](Self::run) with the full PR 7 recovery lifecycle:
    /// membership views, node-level eviction, flap-damped quarantine,
    /// and [`RecoveryPolicy`] steering — over the TCP fabric.
    ///
    /// A failed attempt evicts *whole nodes*: the failure domain of
    /// the shared data plane is the node-pair stream, so every rank of
    /// a node whose ranks died leaves together. That keeps the
    /// survivor count divisible by the node size, so hierarchical
    /// plans re-lower onto the survivor set unchanged; when the
    /// divisibility is ever lost the plan falls back to a single-level
    /// Bruck radix.
    ///
    /// `inputs[rank]` stays indexed by *original* rank; each retry
    /// slices the dense survivor sub-matrix out of it. On success,
    /// `output.results[i]` is survivor `survivors[i]`'s dense result.
    ///
    /// # Errors
    ///
    /// Non-rank failures (timeouts, protocol errors) propagate
    /// immediately; rank failures propagate when attempts are
    /// exhausted, no survivors remain, or
    /// [`RecoveryPolicy::FailFast`] trips its quorum.
    pub fn run_resilient(
        cfg: &ClusterConfig,
        plan: &IndexPlan,
        block: usize,
        inputs: &[Vec<u8>],
        max_attempts: usize,
    ) -> Result<ScaleResilientOutput, NetError> {
        Self::run_resilient_with_workers(cfg, plan, block, inputs, max_attempts, None)
    }

    /// [`run_resilient`](Self::run_resilient) with an explicit worker
    /// count.
    ///
    /// # Errors
    ///
    /// See [`run_resilient`](Self::run_resilient).
    pub fn run_resilient_with_workers(
        cfg: &ClusterConfig,
        plan: &IndexPlan,
        block: usize,
        inputs: &[Vec<u8>],
        max_attempts: usize,
        workers: Option<usize>,
    ) -> Result<ScaleResilientOutput, NetError> {
        let n0 = cfg.n;
        if max_attempts == 0 {
            return Err(NetError::App("max_attempts must be at least 1".into()));
        }
        if inputs.len() != n0 {
            return Err(NetError::App(format!(
                "{} input buffers for {n0} ranks",
                inputs.len()
            )));
        }
        for (rank, input) in inputs.iter().enumerate() {
            if input.len() != n0 * block {
                return Err(NetError::App(format!(
                    "rank {rank}: input is {} bytes, want n·b = {}",
                    input.len(),
                    n0 * block
                )));
            }
        }
        let node_size0 = cfg.node_size.unwrap_or(n0);
        let membership = Membership::new(n0).with_base_quarantine(cfg.quarantine);
        let mut fabric_acc = FabricStats::default();
        for attempt in 0..max_attempts {
            let members = membership.members();
            if members.is_empty() {
                return Err(NetError::RanksFailed {
                    ranks: membership.evicted_ranks(),
                });
            }
            let n = members.len();
            let node_size = fit_node_size(n, node_size0);
            let plan_fit = fit_plan(plan, n, node_size);
            let mut acfg = cfg.clone();
            acfg.n = n;
            acfg.node_size = Some(node_size);
            let base = if attempt == 0 {
                (*cfg.faults).clone()
            } else {
                cfg.faults.survivor_plan()
            };
            acfg.faults = Arc::new(base.bind_recurring(&members));
            // Dense survivor inputs: row r of the original all-to-all
            // matrix, restricted to survivor columns.
            let dense_inputs: Vec<Vec<u8>> = members
                .iter()
                .map(|&r| {
                    let mut buf = Vec::with_capacity(n * block);
                    for &c in &members {
                        buf.extend_from_slice(&inputs[r][c * block..(c + 1) * block]);
                    }
                    buf
                })
                .collect();
            let attempt_out = Self::run_attempt(&acfg, &plan_fit, block, &dense_inputs, workers);
            let failed = attempt_out.failed;
            fabric_acc = fabric_acc.merged(&attempt_out.stats);
            match attempt_out.result {
                Ok(mut out) => {
                    out.metrics.fabric = fabric_acc;
                    out.metrics.membership = membership.stats();
                    return Ok(ScaleResilientOutput {
                        output: out,
                        survivors: members,
                        attempts: attempt + 1,
                        rejoined: membership.rejoined_ranks(),
                        view_id: membership.view_id(),
                    });
                }
                Err(cause) => {
                    if !cause.is_rank_failure() || attempt + 1 == max_attempts || failed.is_empty()
                    {
                        return Err(cause);
                    }
                    // Whole-node eviction: expand every failed dense
                    // rank to its full (attempt-local) node, then map
                    // back to original ranks.
                    let mut evicted = BTreeSet::new();
                    for &dense in &failed {
                        if dense >= n {
                            continue;
                        }
                        let node = dense / node_size;
                        evicted.extend(&members[node * node_size..(node + 1) * node_size]);
                    }
                    for &orig in &evicted {
                        membership.evict(orig);
                    }
                    match cfg.recovery {
                        RecoveryPolicy::ShrinkOnly => {}
                        RecoveryPolicy::FailFast { min_quorum } => {
                            if membership.members().len() < min_quorum {
                                return Err(NetError::RanksFailed {
                                    ranks: membership.evicted_ranks(),
                                });
                            }
                        }
                        RecoveryPolicy::WaitForRejoin { budget } => {
                            let _ = membership.wait_for_rejoin(budget);
                        }
                    }
                }
            }
        }
        unreachable!("loop returns on the last attempt")
    }
}

/// The node size a survivor cluster of `n` ranks actually supports:
/// `want` when it still divides `n` (whole-node eviction keeps it so),
/// else the largest divisor of `n` not exceeding `want`.
fn fit_node_size(n: usize, want: usize) -> usize {
    let want = want.clamp(1, n.max(1));
    if n.is_multiple_of(want) {
        return want;
    }
    (1..=want).rev().find(|&d| n.is_multiple_of(d)).unwrap_or(1)
}

/// Re-fit a plan to a survivor cluster: hierarchical plans survive as
/// long as their node size still tiles the cluster with at least two
/// nodes; otherwise fall back to a single-level Bruck radix built from
/// the plan's remote radix.
fn fit_plan(plan: &IndexPlan, n: usize, node_size: usize) -> IndexPlan {
    match plan {
        IndexPlan::Hierarchical {
            node_size: m,
            radix_remote,
            ..
        } => {
            let still_fits = *m == node_size && n.is_multiple_of(*m) && n / *m >= 2;
            if still_fits {
                plan.clone()
            } else {
                IndexPlan::Radix((*radix_remote).max(2))
            }
        }
        other => other.clone(),
    }
}

/// A chunk's yield: each rank's `(rank, output bytes, metrics)` plus
/// the largest reliability-layer linger hint observed across the
/// slice, which caps the fabric's shutdown drain grace.
type ChunkOutput = (Vec<(usize, Vec<u8>, RankMetrics)>, Option<Duration>);

/// One worker's lockstep interpretation of its rank slice. Ranks whose
/// round receives are complete keep pumping their protocol (acks,
/// retransmissions, probes) until the whole slice finishes the round,
/// so a straggling peer is never starved of the frames it needs.
#[allow(clippy::too_many_arguments)] // internal; mirrors the run state
fn run_chunk(
    mut ctxs: Vec<RankCtx>,
    block: usize,
    timeout: Duration,
    expiry: Option<(Instant, Duration)>,
    checksums: bool,
    shared: &ScaleShared,
    workers: usize,
    round_clock: &RoundClock,
) -> ChunkOutput {
    let ops_len = ctxs.first().map_or(0, |c| c.program.ops.len());
    let n = ctxs.first().map_or(0, |c| c.program.n);
    'ops: for op_idx in 0..ops_len {
        if shared.abort.load(Ordering::SeqCst) {
            break;
        }
        let is_permute = matches!(ctxs[0].program.ops[op_idx], ProgramOp::Permute(_));
        if is_permute {
            for ctx in &mut ctxs {
                let RankCtx {
                    program,
                    work,
                    scratch,
                    metrics,
                    ..
                } = ctx;
                let ProgramOp::Permute(perm) = &program.ops[op_idx] else {
                    unreachable!("op shape validated before spawn");
                };
                for (i, &src) in perm.iter().enumerate() {
                    scratch[i * block..(i + 1) * block]
                        .copy_from_slice(&work[src * block..(src + 1) * block]);
                }
                std::mem::swap(work, scratch);
                metrics.bytes_copied += (n * block) as u64;
            }
            continue;
        }
        // Round: post every rank's sends, then complete receives by
        // readiness — polling, never blocking, so every endpoint state
        // machine this worker owns keeps making progress.
        let mut sent_sizes: Vec<Vec<u64>> = Vec::with_capacity(ctxs.len());
        for ctx in &mut ctxs {
            let t0 = Instant::now();
            let RankCtx {
                rank,
                program,
                transport,
                work,
                metrics,
                ..
            } = ctx;
            let ProgramOp::Round(round) = &program.ops[op_idx] else {
                unreachable!("op shape validated before spawn");
            };
            let mut sizes = Vec::with_capacity(round.sends.len());
            for s in &round.sends {
                let mut payload = Vec::with_capacity(s.slots.len() * block);
                for &slot in &s.slots {
                    payload.extend_from_slice(&work[slot * block..(slot + 1) * block]);
                }
                sizes.push(payload.len() as u64);
                let msg = Message {
                    src: *rank,
                    dst: s.peer,
                    tag: s.tag,
                    checksum: checksums.then(|| payload_checksum(&payload)),
                    payload,
                    arrival: 0.0,
                    seq: 0,
                    ack: 0,
                };
                if let Err(e) = transport.send(msg) {
                    shared.fail(e);
                    break 'ops;
                }
            }
            metrics.wall_send_ns += t0.elapsed().as_nanos() as u64;
            sent_sizes.push(sizes);
        }
        let recv_started = Instant::now();
        let op_deadline = recv_started + timeout;
        let mut pending: Vec<Vec<usize>> = ctxs
            .iter()
            .map(|ctx| {
                let ProgramOp::Round(round) = &ctx.program.ops[op_idx] else {
                    unreachable!("op shape validated before spawn");
                };
                (0..round.recvs.len()).collect()
            })
            .collect();
        let mut left: usize = pending.iter().map(Vec::len).sum();
        let mut idle: u32 = 0;
        while left > 0 {
            if shared.abort.load(Ordering::SeqCst) {
                break 'ops;
            }
            let mut progressed = false;
            for (ci, ctx) in ctxs.iter_mut().enumerate() {
                let RankCtx {
                    program,
                    transport,
                    work,
                    metrics,
                    ..
                } = ctx;
                let ProgramOp::Round(round) = &program.ops[op_idx] else {
                    unreachable!("op shape validated before spawn");
                };
                if pending[ci].is_empty() {
                    // Done rank: one zero-timeout pump keeps acks,
                    // retransmissions, and probe replies flowing.
                    if let Err(e) = transport.wait_any(Duration::ZERO) {
                        shared.fail(e);
                        break 'ops;
                    }
                    continue;
                }
                let mut i = 0;
                while i < pending[ci].len() {
                    let r = &round.recvs[pending[ci][i]];
                    match transport.try_match(r.peer, r.tag) {
                        Ok(Some(msg)) => {
                            if msg.payload.len() != r.slots.len() * block {
                                shared.fail(NetError::App(format!(
                                    "rank {} tag {}: {} payload bytes for {} slots",
                                    program.rank,
                                    r.tag,
                                    msg.payload.len(),
                                    r.slots.len()
                                )));
                                break 'ops;
                            }
                            for (j, &slot) in r.slots.iter().enumerate() {
                                work[slot * block..(slot + 1) * block]
                                    .copy_from_slice(&msg.payload[j * block..(j + 1) * block]);
                            }
                            metrics.bytes_copied += msg.payload.len() as u64;
                            pending[ci].swap_remove(i);
                            left -= 1;
                            progressed = true;
                        }
                        Ok(None) => i += 1,
                        Err(e) => {
                            shared.fail(e);
                            break 'ops;
                        }
                    }
                }
            }
            if left == 0 {
                break;
            }
            if progressed {
                idle = 0;
                continue;
            }
            idle = idle.saturating_add(1);
            let now = Instant::now();
            if let Some((at, budget)) = expiry {
                if now >= at {
                    let rank = first_pending_rank(&ctxs, &pending);
                    shared.fail(NetError::DeadlineExceeded { rank, budget });
                    break 'ops;
                }
            }
            if now >= op_deadline {
                let (ci, ri) = pending
                    .iter()
                    .enumerate()
                    .find_map(|(ci, p)| p.first().map(|&ri| (ci, ri)))
                    .expect("left > 0 implies a pending receive");
                let ProgramOp::Round(round) = &ctxs[ci].program.ops[op_idx] else {
                    unreachable!("op shape validated before spawn");
                };
                shared.fail(NetError::Timeout {
                    rank: ctxs[ci].rank,
                    from: round.recvs[ri].peer,
                    tag: round.recvs[ri].tag,
                    waited: timeout,
                });
                break 'ops;
            }
            // Nothing arrived for anyone: let the reactor (and on a
            // shared core, the other workers) run.
            if idle < 16 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        let recv_wall = recv_started.elapsed().as_nanos() as u64;
        for (ci, ctx) in ctxs.iter_mut().enumerate() {
            let ProgramOp::Round(round) = &ctx.program.ops[op_idx] else {
                unreachable!("op shape validated before spawn");
            };
            ctx.metrics.wall_recv_ns += recv_wall;
            ctx.metrics.record_round(&sent_sizes[ci], round.recvs.len());
            round_clock.advance(ctx.rank);
        }
    }

    if !shared.abort.load(Ordering::SeqCst) {
        // Ack drain: interleave short flushes so ranks in this slice
        // answer each other's unacked tails, then linger pumping until
        // every worker is done (a peer elsewhere may still need acks).
        for _ in 0..4 {
            for ctx in &mut ctxs {
                let _ = ctx
                    .transport
                    .flush(Instant::now() + Duration::from_millis(2));
            }
        }
        shared.finished.fetch_add(1, Ordering::SeqCst);
        let linger_deadline = Instant::now() + timeout.min(Duration::from_secs(1));
        while shared.finished.load(Ordering::SeqCst) < workers
            && !shared.abort.load(Ordering::SeqCst)
            && Instant::now() < linger_deadline
        {
            for ctx in &mut ctxs {
                let _ = ctx.transport.wait_any(Duration::ZERO);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    // The largest linger hint among this chunk's endpoints caps how
    // long the fabric's shutdown drain needs to be.
    let linger = ctxs.iter().filter_map(|c| c.transport.linger_hint()).max();
    let ranks = ctxs
        .into_iter()
        .map(|mut ctx| {
            ctx.metrics.link = ctx.transport.link_stats();
            (ctx.rank, ctx.work, ctx.metrics)
        })
        .collect();
    (ranks, linger)
}

/// The lowest rank in this chunk that still has an unmatched receive.
fn first_pending_rank(ctxs: &[RankCtx], pending: &[Vec<usize>]) -> usize {
    pending
        .iter()
        .position(|p| !p.is_empty())
        .map_or(0, |ci| ctxs[ci].rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical per-rank all-to-all input: block `j` of rank `i`
    /// is a deterministic function of `(i, j)`.
    fn index_input(rank: usize, n: usize, block: usize) -> Vec<u8> {
        (0..n * block)
            .map(|at| {
                let (j, i) = (at / block, at % block);
                (rank.wrapping_mul(31) ^ j.wrapping_mul(7) ^ i) as u8
            })
            .collect()
    }

    /// After the index operation rank `r` holds block `B[j, r]` at slot
    /// `j` for every `j`.
    fn index_expected(rank: usize, n: usize, block: usize) -> Vec<u8> {
        (0..n * block)
            .map(|at| {
                let (j, i) = (at / block, at % block);
                (j.wrapping_mul(31) ^ rank.wrapping_mul(7) ^ i) as u8
            })
            .collect()
    }

    #[test]
    fn pair_index_is_a_dense_enumeration() {
        let nodes = 5;
        let mut seen = vec![false; nodes * (nodes - 1) / 2];
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                let p = pair_index(nodes, a, b);
                assert!(!seen[p], "pair ({a},{b}) collided at {p}");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fabric_routes_intra_and_inter_node() {
        let (fabric, mut ts) = TcpFabric::new(4, 2).unwrap();
        let msg = |src: usize, dst: usize, tag: Tag, payload: Vec<u8>| Message {
            src,
            dst,
            tag,
            payload,
            arrival: 0.0,
            seq: 0,
            ack: 0,
            checksum: None,
        };
        // Intra-node (0 → 1): channel path.
        ts[0].send(msg(0, 1, 7, vec![1, 2, 3])).unwrap();
        let m = ts[1].recv_match(0, 7, Duration::from_secs(2)).unwrap();
        assert_eq!(m.payload, vec![1, 2, 3]);
        // Inter-node (0 → 2 and 3 → 1): both stream directions.
        ts[0].send(msg(0, 2, 9, vec![4; 10])).unwrap();
        ts[3].send(msg(3, 1, 11, vec![5; 10])).unwrap();
        let m = ts[2].recv_match(0, 9, Duration::from_secs(2)).unwrap();
        assert_eq!(m.payload, vec![4; 10]);
        let m = ts[1].recv_match(3, 11, Duration::from_secs(2)).unwrap();
        assert_eq!(m.payload, vec![5; 10]);
        drop(ts);
        assert_eq!(fabric.shutdown(), None);
    }

    #[test]
    fn fabric_fragments_and_reassembles_large_inter_node_messages() {
        let (fabric, mut ts) = TcpFabric::new(2, 1).unwrap();
        let bytes = 3 * FRAG_PAYLOAD + 123;
        let payload: Vec<u8> = (0..bytes).map(|i| (i * 13) as u8).collect();
        ts[0]
            .send(Message {
                src: 0,
                dst: 1,
                tag: 5,
                payload: payload.clone(),
                arrival: 0.25,
                seq: 3,
                ack: 1,
                checksum: None,
            })
            .unwrap();
        let m = ts[1].recv_match(0, 5, Duration::from_secs(5)).unwrap();
        assert_eq!(m.payload, payload);
        assert_eq!((m.arrival, m.seq, m.ack), (0.25, 3, 1));
        drop(ts);
        assert_eq!(fabric.shutdown(), None);
    }

    #[test]
    fn fabric_rejects_non_dividing_node_size() {
        assert!(TcpFabric::new(6, 4).is_err());
    }

    #[test]
    fn scale_cluster_matches_the_oracle_across_plans() {
        let block = 3;
        let n = 16;
        let cfg = ClusterConfig::new(n)
            .with_node_size(4)
            .with_reliability(crate::reliable::Reliability::default())
            .with_timeout(Duration::from_secs(20));
        let inputs: Vec<Vec<u8>> = (0..n).map(|r| index_input(r, n, block)).collect();
        for plan in [
            IndexPlan::Radix(2),
            IndexPlan::Radix(4),
            IndexPlan::Direct,
            IndexPlan::Hierarchical {
                node_size: 4,
                radix_local: 2,
                radix_remote: 2,
            },
        ] {
            let out = TcpScaleCluster::run_with_workers(&cfg, &plan, block, &inputs, Some(3))
                .unwrap_or_else(|e| panic!("{}: {e}", plan.label()));
            for (rank, got) in out.results.iter().enumerate() {
                assert_eq!(
                    got,
                    &index_expected(rank, n, block),
                    "{} rank {rank}",
                    plan.label()
                );
            }
            assert_eq!(out.workers, 3);
            assert!(out.threads <= 4, "O(workers) threads, got {}", out.threads);
            assert_eq!(out.metrics.per_rank.len(), n);
            assert!(out.rounds > 0);
            assert_eq!(
                out.metrics.global_complexity().map(|c| c.c1),
                Some(out.rounds as u64),
                "{}: per-rank round accounting must agree",
                plan.label()
            );
        }
    }

    #[test]
    fn scale_cluster_without_reliability_is_still_bit_correct() {
        let block = 2;
        let n = 12;
        let cfg = ClusterConfig::new(n).with_node_size(3);
        let inputs: Vec<Vec<u8>> = (0..n).map(|r| index_input(r, n, block)).collect();
        let out = TcpScaleCluster::run(&cfg, &IndexPlan::Radix(3), block, &inputs).unwrap();
        for (rank, got) in out.results.iter().enumerate() {
            assert_eq!(got, &index_expected(rank, n, block), "rank {rank}");
        }
    }

    #[test]
    fn scale_cluster_rejects_shape_mismatches() {
        let cfg = ClusterConfig::new(4);
        let err = TcpScaleCluster::run(&cfg, &IndexPlan::Radix(2), 2, &[vec![0u8; 8]]).unwrap_err();
        assert!(matches!(err, NetError::App(_)), "{err}");
        let bad = vec![vec![0u8; 7]; 4];
        let err = TcpScaleCluster::run(&cfg, &IndexPlan::Radix(2), 2, &bad).unwrap_err();
        assert!(matches!(err, NetError::App(_)), "{err}");
    }

    #[test]
    fn unlowerable_plan_is_a_clean_error() {
        let cfg = ClusterConfig::new(4);
        let inputs = vec![vec![0u8; 8]; 4];
        let err =
            TcpScaleCluster::run(&cfg, &IndexPlan::Mixed(vec![2, 2]), 2, &inputs).unwrap_err();
        assert!(matches!(err, NetError::App(_)), "{err}");
    }

    #[test]
    fn single_rank_short_circuits() {
        let cfg = ClusterConfig::new(1);
        let out = TcpScaleCluster::run(&cfg, &IndexPlan::Direct, 4, &[vec![9u8; 4]]).unwrap();
        assert_eq!(out.results, vec![vec![9u8; 4]]);
        assert_eq!(out.threads, 0);
    }
}

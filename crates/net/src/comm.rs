//! The [`Comm`] abstraction and process groups.
//!
//! The paper motivates the fully connected model partly by flexibility:
//! algorithms "can operate within arbitrary and dynamic subsets of
//! processors" (§1.2). [`Comm`] is the interface every collective in this
//! workspace is written against; [`Endpoint`] implements
//! it for the whole cluster, and [`GroupComm`] restricts it to an
//! arbitrary subset with translated ranks — so any collective runs
//! unchanged inside any group, including several disjoint groups
//! concurrently.

use std::time::Duration;

use crate::endpoint::{Endpoint, GatherSendSpec, RecvSpec, SendSpec};
use crate::error::NetError;
use crate::message::{Message, Tag};

/// A communication context: a rank within some set of peers, with k-port
/// synchronous rounds.
pub trait Comm {
    /// This participant's rank in `[0, size)`.
    fn rank(&self) -> usize;

    /// Number of participants.
    fn size(&self) -> usize;

    /// Ports per participant (`k`).
    fn ports(&self) -> usize;

    /// One synchronous k-port round (see [`Endpoint::round`]).
    ///
    /// # Errors
    ///
    /// Port-model violations, timeouts, fault injection.
    fn round(
        &mut self,
        sends: &[SendSpec<'_>],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError>;

    /// One synchronous k-port round whose sends are gather span lists
    /// (see [`Endpoint::round_gather`]). The default materializes each
    /// span list into pooled scratch and delegates to
    /// [`round`](Comm::round); pooled contexts override it with the
    /// single-copy staging path.
    ///
    /// # Errors
    ///
    /// See [`Comm::round`]; also [`NetError::App`] on out-of-bounds
    /// spans.
    fn round_gather(
        &mut self,
        sends: &[GatherSendSpec<'_>],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError> {
        let mut payloads = Vec::with_capacity(sends.len());
        for s in sends {
            let mut buf = self.acquire(s.len());
            let mut at = 0usize;
            for &(start, len) in s.spans {
                let Some(src) = s.src.get(start..start + len) else {
                    for b in payloads {
                        self.recycle(b);
                    }
                    self.recycle(buf);
                    return Err(NetError::App(format!(
                        "round_gather: span ({start}, {len}) out of bounds for a \
                         {}-byte source buffer",
                        s.src.len()
                    )));
                };
                buf[at..at + len].copy_from_slice(src);
                at += len;
            }
            payloads.push(buf);
        }
        let materialized: Vec<SendSpec<'_>> = sends
            .iter()
            .zip(&payloads)
            .map(|(s, payload)| SendSpec {
                to: s.to,
                tag: s.tag,
                payload,
            })
            .collect();
        let out = self.round(&materialized, recvs);
        for b in payloads {
            self.recycle(b);
        }
        out
    }

    /// The physical-substrate label of the underlying transport
    /// (`"channel"`, `"uds"`, …; see
    /// [`crate::transport::Transport::kind`]). Calibration caches key
    /// fitted cost models by it. Non-transport contexts report
    /// `"generic"`.
    fn transport_kind(&self) -> &'static str {
        "generic"
    }

    /// Advance the local virtual clock by `dt` seconds of computation.
    fn advance_compute(&mut self, dt: f64);

    /// Charge the virtual clock for copying `bytes` locally (pack/unpack
    /// and buffer rotations), per the cost model's
    /// [`bruck_model::cost::CostModel::copy_cost`].
    fn charge_copy(&mut self, bytes: u64);

    /// Acquire pooled scratch of exactly `len` bytes (zeroed).
    ///
    /// The default implementation allocates fresh; pooled contexts
    /// ([`Endpoint`], [`GroupComm`]) serve from the cluster pool so
    /// steady-state acquires are allocation-free.
    fn acquire(&mut self, len: usize) -> Vec<u8> {
        vec![0; len]
    }

    /// Return a buffer (scratch or a received payload) for reuse.
    ///
    /// The default implementation simply drops it.
    fn recycle(&mut self, buf: Vec<u8>) {
        drop(buf);
    }

    /// The paper's `send_and_recv`: one send and one receive in one round.
    ///
    /// The returned buffer comes from the buffer pool (when the context
    /// is pooled); hand it back via [`Comm::recycle`] to keep the steady
    /// state allocation-free.
    ///
    /// # Errors
    ///
    /// See [`Comm::round`].
    fn send_and_recv(
        &mut self,
        to: usize,
        payload: &[u8],
        from: usize,
        tag: Tag,
    ) -> Result<Vec<u8>, NetError> {
        let msgs = self.round(&[SendSpec { to, tag, payload }], &[RecvSpec { from, tag }])?;
        Ok(msgs.into_iter().next().expect("one recv requested").payload)
    }

    /// Borrowed-payload `send_and_recv`: received bytes land in a prefix
    /// of `out`, the transport buffer is recycled, and the byte count is
    /// returned. The allocating [`Comm::send_and_recv`] is the thin
    /// wrapper; this is the hot path.
    ///
    /// # Errors
    ///
    /// See [`Comm::round`]; [`NetError::App`] if `out` is too small.
    fn send_and_recv_into(
        &mut self,
        to: usize,
        payload: &[u8],
        from: usize,
        tag: Tag,
        out: &mut [u8],
    ) -> Result<usize, NetError> {
        let msgs = self.round(&[SendSpec { to, tag, payload }], &[RecvSpec { from, tag }])?;
        let msg = msgs.into_iter().next().expect("one recv requested");
        let len = msg.payload.len();
        let Some(dst) = out.get_mut(..len) else {
            return Err(NetError::App(format!(
                "send_and_recv_into: output buffer of {} bytes cannot hold {len}-byte message",
                out.len()
            )));
        };
        dst.copy_from_slice(&msg.payload);
        self.recycle(msg.payload);
        Ok(len)
    }

    /// A round with no communication, keeping round counters aligned.
    ///
    /// # Errors
    ///
    /// Fault-injection kills.
    fn idle_round(&mut self) -> Result<(), NetError> {
        self.round(&[], &[]).map(|_| ())
    }

    /// Arm this context's completion budget: every blocking wait in the
    /// round engine and the reliability sublayer fails with
    /// [`NetError::DeadlineExceeded`] once `budget` elapses. Contexts
    /// without a deadline (the default) ignore the call.
    fn arm_deadline(&mut self, budget: Duration) {
        let _ = budget;
    }

    /// Disarm the completion budget; the collective call that armed it
    /// disarms it on the way out, success or failure.
    fn disarm_deadline(&mut self) {}

    /// Time left before the armed budget expires; `None` when no budget
    /// is armed (or the context has no deadline).
    fn deadline_remaining(&self) -> Option<Duration> {
        None
    }

    /// The reliability sublayer's adaptive worst-link retransmission
    /// timeout, if one is running (see
    /// [`crate::transport::Transport::rto_hint`]) — the natural unit for
    /// scaling per-round patience under a deadline.
    fn rto_hint(&self) -> Option<Duration> {
        None
    }
}

impl Comm for Endpoint {
    fn rank(&self) -> usize {
        Endpoint::rank(self)
    }

    fn size(&self) -> usize {
        Endpoint::size(self)
    }

    fn ports(&self) -> usize {
        Endpoint::ports(self)
    }

    fn round(
        &mut self,
        sends: &[SendSpec<'_>],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError> {
        Endpoint::round(self, sends, recvs)
    }

    fn round_gather(
        &mut self,
        sends: &[GatherSendSpec<'_>],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError> {
        Endpoint::round_gather(self, sends, recvs)
    }

    fn transport_kind(&self) -> &'static str {
        Endpoint::transport_kind(self)
    }

    fn advance_compute(&mut self, dt: f64) {
        Endpoint::advance_compute(self, dt);
    }

    fn charge_copy(&mut self, bytes: u64) {
        Endpoint::charge_copy(self, bytes);
    }

    fn acquire(&mut self, len: usize) -> Vec<u8> {
        Endpoint::acquire(self, len)
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        Endpoint::recycle(self, buf);
    }

    fn send_and_recv_into(
        &mut self,
        to: usize,
        payload: &[u8],
        from: usize,
        tag: Tag,
        out: &mut [u8],
    ) -> Result<usize, NetError> {
        Endpoint::send_and_recv_into(self, to, payload, from, tag, out)
    }

    fn arm_deadline(&mut self, budget: Duration) {
        Endpoint::deadline(self).arm(budget);
    }

    fn disarm_deadline(&mut self) {
        Endpoint::deadline(self).disarm();
    }

    fn deadline_remaining(&self) -> Option<Duration> {
        Endpoint::deadline(self).remaining()
    }

    fn rto_hint(&self) -> Option<Duration> {
        Endpoint::rto_hint(self)
    }
}

/// A process group: an ordered subset of global ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// A group from an ordered member list (global ranks, no duplicates).
    ///
    /// # Panics
    ///
    /// Panics on duplicates or an empty list.
    #[must_use]
    pub fn new(members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "a group needs at least one member");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate group members");
        Self { members }
    }

    /// The contiguous range `[start, start+len)`.
    #[must_use]
    pub fn range(start: usize, len: usize) -> Self {
        Self::new((start..start + len).collect())
    }

    /// Every `stride`-th rank of `n`, starting at `offset` — e.g. the rows
    /// or columns of a 2D process grid.
    #[must_use]
    pub fn strided(offset: usize, stride: usize, n: usize) -> Self {
        assert!(stride >= 1);
        Self::new((offset..n).step_by(stride).collect())
    }

    /// Member count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never true — construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The ordered global ranks.
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The group rank of a global rank, if a member.
    #[must_use]
    pub fn rank_of(&self, global: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == global)
    }

    /// The group minus `dead` (global ranks), preserving member order —
    /// the shrink step of shrink-and-retry recovery: survivors rebuild a
    /// dense communicator and re-run the collective among themselves.
    ///
    /// # Panics
    ///
    /// Panics if every member is dead (a group cannot be empty).
    #[must_use]
    pub fn without(&self, dead: &[usize]) -> Self {
        Self::new(
            self.members
                .iter()
                .copied()
                .filter(|m| !dead.contains(m))
                .collect(),
        )
    }

    /// Bind this group to an endpoint whose global rank must be a member.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint's rank is not in the group, or a member is
    /// out of range.
    #[must_use]
    pub fn bind<'a>(&self, ep: &'a mut Endpoint) -> GroupComm<'a> {
        let global = Endpoint::rank(ep);
        let my_index = self
            .rank_of(global)
            .unwrap_or_else(|| panic!("rank {global} is not a member of {:?}", self.members));
        for &m in &self.members {
            assert!(m < Endpoint::size(ep), "member {m} out of range");
        }
        GroupComm {
            ep,
            members: self.members.clone(),
            my_index,
            tag_offset: 0,
        }
    }
}

/// A [`Comm`] restricted to a group, with translated ranks.
#[derive(Debug)]
pub struct GroupComm<'a> {
    ep: &'a mut Endpoint,
    members: Vec<usize>,
    my_index: usize,
    tag_offset: Tag,
}

impl<'a> GroupComm<'a> {
    /// Shift every tag this context sends or matches by
    /// `epoch << EPOCH_SHIFT`. Successive shrink-and-retry attempts run
    /// in distinct epochs, so stale messages from an aborted attempt can
    /// never match a retry's receives — isolation without flushing.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.tag_offset = epoch << EPOCH_SHIFT;
        self
    }

    /// Discard stale in-flight traffic queued at this rank (hygiene
    /// between shrink-and-retry attempts; see [`Endpoint::purge_stale`]).
    pub fn purge_stale(&mut self) -> usize {
        self.ep.purge_stale()
    }

    /// The ranks the cluster's failure detector has declared dead
    /// (global ids).
    #[must_use]
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.ep.failed_ranks()
    }
}

/// Bit position of the epoch in a [`GroupComm`] tag: collective tags stay
/// below `1 << EPOCH_SHIFT`, epochs occupy the bits above.
pub const EPOCH_SHIFT: u32 = 40;

impl GroupComm<'_> {
    fn to_global(&self, group_rank: usize) -> Result<usize, NetError> {
        self.members
            .get(group_rank)
            .copied()
            .ok_or(NetError::BadPeer {
                rank: self.my_index,
                peer: group_rank,
                size: self.members.len(),
            })
    }

    fn to_group(&self, global: usize) -> usize {
        self.members
            .iter()
            .position(|&m| m == global)
            .expect("message from outside the group matched a group receive")
    }
}

impl Comm for GroupComm<'_> {
    fn rank(&self) -> usize {
        self.my_index
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn ports(&self) -> usize {
        Endpoint::ports(self.ep)
    }

    fn round(
        &mut self,
        sends: &[SendSpec<'_>],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError> {
        let sends: Vec<SendSpec<'_>> = sends
            .iter()
            .map(|s| {
                Ok(SendSpec {
                    to: self.to_global(s.to)?,
                    tag: s.tag + self.tag_offset,
                    payload: s.payload,
                })
            })
            .collect::<Result<_, NetError>>()?;
        let recvs: Vec<RecvSpec> = recvs
            .iter()
            .map(|r| {
                Ok(RecvSpec {
                    from: self.to_global(r.from)?,
                    tag: r.tag + self.tag_offset,
                })
            })
            .collect::<Result<_, NetError>>()?;
        let mut msgs = Endpoint::round(self.ep, &sends, &recvs)?;
        for m in &mut msgs {
            m.src = self.to_group(m.src);
            m.dst = self.my_index;
            m.tag -= self.tag_offset;
        }
        Ok(msgs)
    }

    fn round_gather(
        &mut self,
        sends: &[GatherSendSpec<'_>],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError> {
        let sends: Vec<GatherSendSpec<'_>> = sends
            .iter()
            .map(|s| {
                Ok(GatherSendSpec {
                    to: self.to_global(s.to)?,
                    tag: s.tag + self.tag_offset,
                    src: s.src,
                    spans: s.spans,
                })
            })
            .collect::<Result<_, NetError>>()?;
        let recvs: Vec<RecvSpec> = recvs
            .iter()
            .map(|r| {
                Ok(RecvSpec {
                    from: self.to_global(r.from)?,
                    tag: r.tag + self.tag_offset,
                })
            })
            .collect::<Result<_, NetError>>()?;
        let mut msgs = Endpoint::round_gather(self.ep, &sends, &recvs)?;
        for m in &mut msgs {
            m.src = self.to_group(m.src);
            m.dst = self.my_index;
            m.tag -= self.tag_offset;
        }
        Ok(msgs)
    }

    fn transport_kind(&self) -> &'static str {
        Endpoint::transport_kind(self.ep)
    }

    fn advance_compute(&mut self, dt: f64) {
        Endpoint::advance_compute(self.ep, dt);
    }

    fn charge_copy(&mut self, bytes: u64) {
        Endpoint::charge_copy(self.ep, bytes);
    }

    fn acquire(&mut self, len: usize) -> Vec<u8> {
        Endpoint::acquire(self.ep, len)
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        Endpoint::recycle(self.ep, buf);
    }

    fn arm_deadline(&mut self, budget: Duration) {
        Endpoint::deadline(self.ep).arm(budget);
    }

    fn disarm_deadline(&mut self) {
        Endpoint::deadline(self.ep).disarm();
    }

    fn deadline_remaining(&self) -> Option<Duration> {
        Endpoint::deadline(self.ep).remaining()
    }

    fn rto_hint(&self) -> Option<Duration> {
        Endpoint::rto_hint(self.ep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};

    #[test]
    fn group_construction() {
        let g = Group::range(2, 3);
        assert_eq!(g.members(), &[2, 3, 4]);
        assert_eq!(g.rank_of(3), Some(1));
        assert_eq!(g.rank_of(5), None);
        let g = Group::strided(1, 2, 8);
        assert_eq!(g.members(), &[1, 3, 5, 7]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_members_rejected() {
        let _ = Group::new(vec![1, 2, 1]);
    }

    #[test]
    fn group_ring_with_translated_ranks() {
        // Global ranks {1, 3, 5} of a 6-rank cluster rotate a token while
        // the others stay silent.
        let cfg = ClusterConfig::new(6);
        let group = Group::new(vec![1, 3, 5]);
        let out = Cluster::run(&cfg, |ep| {
            let Some(_) = group.rank_of(Endpoint::rank(ep)) else {
                return Ok(None);
            };
            let mut gc = group.bind(ep);
            let n = gc.size();
            let right = (gc.rank() + 1) % n;
            let left = (gc.rank() + n - 1) % n;
            let got = gc.send_and_recv(right, &[gc.rank() as u8], left, 0)?;
            Ok(Some(got[0] as usize))
        })
        .unwrap();
        assert_eq!(out.results[1], Some(2)); // group rank 0 hears from 2
        assert_eq!(out.results[3], Some(0));
        assert_eq!(out.results[5], Some(1));
        assert_eq!(out.results[0], None);
    }

    #[test]
    fn disjoint_groups_run_concurrently() {
        // Two halves of an 8-rank cluster each rotate independently.
        let cfg = ClusterConfig::new(8);
        let lo = Group::range(0, 4);
        let hi = Group::range(4, 4);
        let out = Cluster::run(&cfg, |ep| {
            let group = if Endpoint::rank(ep) < 4 { &lo } else { &hi };
            let mut gc = group.bind(ep);
            let n = gc.size();
            let right = (gc.rank() + 1) % n;
            let left = (gc.rank() + n - 1) % n;
            let got = gc.send_and_recv(right, &[gc.rank() as u8 + 10], left, 0)?;
            Ok(got[0])
        })
        .unwrap();
        // Every rank hears its group-left neighbour; no cross-group leak.
        assert_eq!(out.results, vec![13, 10, 11, 12, 13, 10, 11, 12]);
    }

    #[test]
    fn out_of_range_group_peer_rejected() {
        let cfg = ClusterConfig::new(4);
        let group = Group::range(0, 2);
        let err = Cluster::run(&cfg, |ep| {
            if Endpoint::rank(ep) < 2 {
                let mut gc = group.bind(ep);
                // Group has 2 members; peer 2 is invalid.
                gc.send_and_recv(2, &[0], 2, 0)?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, NetError::BadPeer { .. }));
    }
}

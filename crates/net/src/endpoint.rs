//! The per-rank communication endpoint.
//!
//! An [`Endpoint`] is handed to each SPMD thread by
//! [`crate::Cluster::run`]. Its central primitive is [`Endpoint::round`]:
//! one synchronous communication round in the k-port model — up to `k`
//! sends to distinct peers and up to `k` receives from distinct peers,
//! all counted against the paper's `C1`/`C2` measures and the virtual
//! clock.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bruck_model::cost::CostModel;

use crate::deadline::Deadline;
use crate::error::NetError;
use crate::failure::FailureDetector;
use crate::fault::{FaultPlan, RoundClock};
use crate::message::{payload_checksum, Message, Tag};
use crate::metrics::RankMetrics;
use crate::pool::BufferPool;
use crate::trace::{Trace, TraceEvent};
use crate::transport::Transport;
use crate::vbarrier::VBarrier;

/// How often a blocked receive re-checks the failure detector: short
/// enough that a cluster-wide failure verdict interrupts waiters well
/// before their own timeout would fire.
const FAILOVER_POLL: Duration = Duration::from_millis(2);

/// One outgoing message in a round.
#[derive(Debug, Clone, Copy)]
pub struct SendSpec<'a> {
    /// Destination rank.
    pub to: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload.
    pub payload: &'a [u8],
}

/// One expected incoming message in a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvSpec {
    /// Source rank.
    pub from: usize,
    /// Expected tag.
    pub tag: Tag,
}

/// One outgoing message described as a span list over a source buffer —
/// the gather fast path's iovec.
///
/// Where a [`SendSpec`] hands the round a payload that the caller already
/// packed contiguous (one memcpy) and the endpoint then stages into a
/// pooled buffer (a second memcpy), a gather spec hands the endpoint the
/// *span list* and the endpoint gathers the spans straight into the
/// pooled staging buffer the transport writes out — one memcpy total.
/// The message's payload is the spans' bytes concatenated in order.
#[derive(Debug, Clone, Copy)]
pub struct GatherSendSpec<'a> {
    /// Destination rank.
    pub to: usize,
    /// Message tag.
    pub tag: Tag,
    /// The buffer the spans index into.
    pub src: &'a [u8],
    /// `(byte_offset, byte_len)` spans of `src`, concatenated in order.
    pub spans: &'a [(usize, usize)],
}

impl GatherSendSpec<'_> {
    /// Total payload bytes (sum of span lengths).
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.iter().map(|&(_, len)| len).sum()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A rank's handle onto the cluster.
pub struct Endpoint {
    rank: usize,
    size: usize,
    ports: usize,
    cost: Arc<dyn CostModel>,
    transport: Box<dyn Transport>,
    clock: f64,
    metrics: RankMetrics,
    trace: Option<Trace>,
    barrier: Arc<VBarrier>,
    faults: Arc<FaultPlan>,
    timeout: Duration,
    pool: Arc<BufferPool>,
    detector: Option<Arc<FailureDetector>>,
    /// The failure-detector version this rank has acknowledged (see
    /// [`Endpoint::acknowledge_failures`]). Receive waits abort only on
    /// failures *newer* than this, so a resilient caller that has
    /// already shrunk around the known dead can keep communicating.
    seen_version: u64,
    /// Whether outbound payloads are checksummed (on exactly when the
    /// fault plan can corrupt the wire, so the fault-free hot path pays
    /// nothing).
    checksums: bool,
    /// Complete a round's receives strictly in spec order with
    /// sliced polling — the pre-pipelining round engine, kept for the
    /// wire benchmark's baseline (see `ClusterConfig::with_serial_rounds`).
    serial_rounds: bool,
    /// The rank's completion budget, shared with the reliability layer
    /// (and armed cluster-wide by `ClusterConfig::with_deadline` or per
    /// collective by the API layer). Unarmed checks are one atomic load.
    deadline: Deadline,
    /// Cluster-shared completed-rounds clock: published after every
    /// round so the wire-level fault layer can key partitions and cuts
    /// on round numbers even for retransmissions and acks.
    round_clock: Arc<RoundClock>,
}

impl Endpoint {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        ports: usize,
        cost: Arc<dyn CostModel>,
        transport: Box<dyn Transport>,
        trace: Option<Trace>,
        barrier: Arc<VBarrier>,
        faults: Arc<FaultPlan>,
        timeout: Duration,
        pool: Arc<BufferPool>,
        detector: Option<Arc<FailureDetector>>,
        serial_rounds: bool,
        deadline: Deadline,
        round_clock: Arc<RoundClock>,
    ) -> Self {
        let checksums = faults.has_wire_faults();
        Self {
            rank,
            size,
            ports,
            cost,
            transport,
            clock: 0.0,
            metrics: RankMetrics::default(),
            trace,
            barrier,
            faults,
            timeout,
            pool,
            detector,
            seen_version: 0,
            checksums,
            serial_rounds,
            deadline,
            round_clock,
        }
    }

    /// The rank's completion budget. Arm it (directly or through
    /// [`crate::comm::Comm::arm_deadline`]) to bound how long any
    /// blocking wait in this endpoint *or its reliability sublayer* can
    /// park before failing with [`NetError::DeadlineExceeded`].
    #[must_use]
    pub fn deadline(&self) -> &Deadline {
        &self.deadline
    }

    /// The reliability sublayer's adaptive worst-link RTO, if any
    /// (see [`Transport::rto_hint`]).
    #[must_use]
    pub fn rto_hint(&self) -> Option<Duration> {
        self.transport.rto_hint()
    }

    /// How long this endpoint's transport wants the end-of-run linger
    /// phase to last (see [`Transport::linger_hint`]).
    #[must_use]
    pub fn linger_hint(&self) -> Option<Duration> {
        self.transport.linger_hint()
    }

    /// The cluster-shared buffer pool backing this endpoint's data plane.
    #[must_use]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Acquire pooled scratch of exactly `len` bytes (zeroed).
    #[must_use]
    pub fn acquire(&self, len: usize) -> Vec<u8> {
        self.pool.acquire(len)
    }

    /// Return a buffer (scratch or a received payload) to the pool.
    pub fn recycle(&self, buf: Vec<u8>) {
        self.pool.recycle(buf);
    }

    /// The physical-substrate label of this endpoint's transport stack
    /// (see [`Transport::kind`]) — the key calibration caches file their
    /// fitted `(β, τ)` under.
    #[must_use]
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// This rank's id in `[0, size)`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors in the cluster.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Ports per processor (`k` in the paper's model).
    #[must_use]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Current virtual time (seconds).
    #[must_use]
    pub fn virtual_time(&self) -> f64 {
        self.clock
    }

    /// Rounds completed so far.
    #[must_use]
    pub fn rounds_completed(&self) -> u64 {
        self.metrics.rounds()
    }

    /// Advance the virtual clock by a local computation of `dt` seconds
    /// (models the local data rearrangement of the index algorithm's
    /// phases 1 and 3, if the caller wishes to charge for it).
    pub fn advance_compute(&mut self, dt: f64) {
        assert!(dt >= 0.0, "cannot rewind the clock");
        self.clock += dt;
    }

    /// Charge the virtual clock for a local copy of `bytes` under the
    /// cluster's cost model (zero under the pure linear model; the SP-1
    /// model can be configured with a per-byte copy time, §3.5).
    pub fn charge_copy(&mut self, bytes: u64) {
        self.clock += self.cost.copy_cost(bytes);
    }

    fn check_peers(
        &self,
        peers: impl Iterator<Item = usize>,
        direction: &'static str,
        count: usize,
    ) -> Result<(), NetError> {
        if count > self.ports {
            return Err(NetError::PortLimit {
                rank: self.rank,
                requested: count,
                ports: self.ports,
                direction,
            });
        }
        let mut seen = vec![false; self.size];
        for p in peers {
            if p >= self.size || p == self.rank {
                return Err(NetError::BadPeer {
                    rank: self.rank,
                    peer: p,
                    size: self.size,
                });
            }
            if seen[p] {
                return Err(NetError::DuplicatePeer {
                    rank: self.rank,
                    peer: p,
                });
            }
            seen[p] = true;
        }
        Ok(())
    }

    /// Execute one synchronous communication round: inject all `sends`
    /// (concurrently, one port each), then wait for all `recvs`. Returns
    /// the received messages in the order of `recvs`.
    ///
    /// Virtual-time semantics: every send departs at
    /// `t0 + send_cost(bytes)` and arrives `latency(bytes)` later; the
    /// round completes at the max of all send completions and all receive
    /// completions (`max(t0, arrival) + recv_cost`). Under the linear
    /// model this reproduces `T = Σ rounds (β + τ·max_bytes)`.
    ///
    /// # Errors
    ///
    /// Port-model violations, timeouts, and fault-injection kills.
    pub fn round(
        &mut self,
        sends: &[SendSpec<'_>],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError> {
        let completed = self.round_preflight(sends.iter().map(|s| s.to), sends.len(), recvs)?;

        let t0 = self.clock;
        let wall_send = Instant::now();
        let mut max_send_done = t0;
        let mut sent_sizes = Vec::with_capacity(sends.len());
        for s in sends {
            let bytes = s.payload.len() as u64;
            let depart = t0 + self.cost.send_cost_between(self.rank, s.to, bytes);
            max_send_done = max_send_done.max(depart);
            sent_sizes.push(bytes);
            if let Some(trace) = &self.trace {
                trace.record(TraceEvent {
                    src: self.rank,
                    dst: s.to,
                    tag: s.tag,
                    bytes,
                    round: completed,
                    depart,
                });
            }
            if self.faults.should_drop(self.rank, s.to, completed) {
                continue;
            }
            // Stage the borrowed payload into a pooled buffer: the only
            // copy the data plane makes on the send side, and in steady
            // state it reuses a recycled buffer instead of allocating.
            let mut payload = self.pool.acquire(s.payload.len());
            payload.copy_from_slice(s.payload);
            self.metrics.bytes_copied += bytes;
            self.inject(s.to, s.tag, payload, depart, bytes)?;
        }
        self.metrics.wall_send_ns += wall_send.elapsed().as_nanos() as u64;

        self.finish_round(t0, max_send_done, &sent_sizes, recvs)
    }

    /// [`round`](Self::round) with gather-spec sends: each outgoing
    /// message is a span list over caller scratch, gathered straight into
    /// the pooled staging buffer the transport writes — the separate pack
    /// memcpy of the pack→stage path disappears. Receive semantics,
    /// virtual-time accounting, and error shapes are identical to
    /// [`round`](Self::round).
    ///
    /// # Errors
    ///
    /// Port-model violations, timeouts, and fault-injection kills; also
    /// [`NetError::App`] when a span indexes out of its source buffer.
    pub fn round_gather(
        &mut self,
        sends: &[GatherSendSpec<'_>],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError> {
        let completed = self.round_preflight(sends.iter().map(|s| s.to), sends.len(), recvs)?;

        let t0 = self.clock;
        let wall_send = Instant::now();
        let mut max_send_done = t0;
        let mut sent_sizes = Vec::with_capacity(sends.len());
        for s in sends {
            let total = s.len();
            let bytes = total as u64;
            let depart = t0 + self.cost.send_cost_between(self.rank, s.to, bytes);
            max_send_done = max_send_done.max(depart);
            sent_sizes.push(bytes);
            if let Some(trace) = &self.trace {
                trace.record(TraceEvent {
                    src: self.rank,
                    dst: s.to,
                    tag: s.tag,
                    bytes,
                    round: completed,
                    depart,
                });
            }
            if self.faults.should_drop(self.rank, s.to, completed) {
                continue;
            }
            // Gather the spans directly into the pooled staging buffer:
            // the single copy of the fast path.
            let mut payload = self.pool.acquire(total);
            let mut at = 0usize;
            for &(start, len) in s.spans {
                let Some(src) = s.src.get(start..start + len) else {
                    self.pool.recycle(payload);
                    return Err(NetError::App(format!(
                        "round_gather: span ({start}, {len}) out of bounds for a \
                         {}-byte source buffer",
                        s.src.len()
                    )));
                };
                payload[at..at + len].copy_from_slice(src);
                at += len;
            }
            self.metrics.bytes_copied += bytes;
            self.metrics.bytes_gathered += bytes;
            self.inject(s.to, s.tag, payload, depart, bytes)?;
        }
        self.metrics.wall_send_ns += wall_send.elapsed().as_nanos() as u64;

        self.finish_round(t0, max_send_done, &sent_sizes, recvs)
    }

    /// Shared round prologue: fault-plan kill check plus port-model
    /// validation of both peer lists. Returns the completed-round count
    /// (the current round's index).
    fn round_preflight(
        &mut self,
        send_peers: impl Iterator<Item = usize>,
        send_count: usize,
        recvs: &[RecvSpec],
    ) -> Result<u64, NetError> {
        let completed = self.metrics.rounds();
        if let Some(after) = self.faults.should_kill(self.rank, completed) {
            // Announce our own death before exiting so every waiter gets
            // the cluster-wide verdict instead of a secondary timeout.
            if let Some(det) = &self.detector {
                det.mark_dead(self.rank);
            }
            return Err(NetError::Killed {
                rank: self.rank,
                after_round: after,
            });
        }
        if let Some(pause) = self.faults.stall_for(self.rank, completed) {
            // A SIGSTOP-style stall: the whole rank thread goes dark —
            // no sends, no receives, and crucially no ack traffic from
            // its reliability sublayer — for the scheduled pause. Peers
            // must distinguish this from a crash via probing.
            std::thread::sleep(pause);
        }
        self.deadline.check(self.rank)?;
        self.check_peers(send_peers, "send", send_count)?;
        self.check_peers(recvs.iter().map(|r| r.from), "recv", recvs.len())?;
        Ok(completed)
    }

    /// Hand one staged payload to the transport with checksum and
    /// virtual-time stamps.
    fn inject(
        &mut self,
        to: usize,
        tag: Tag,
        payload: Vec<u8>,
        depart: f64,
        bytes: u64,
    ) -> Result<(), NetError> {
        let msg = Message {
            src: self.rank,
            dst: to,
            tag,
            checksum: self.checksums.then(|| payload_checksum(&payload)),
            payload,
            arrival: depart + self.cost.latency_between(self.rank, to, bytes),
            seq: 0,
            ack: 0,
        };
        self.transport.send(msg)
    }

    /// Shared round epilogue: complete the receives, fold virtual time,
    /// and record the round's metrics.
    fn finish_round(
        &mut self,
        t0: f64,
        max_send_done: f64,
        sent_sizes: &[u64],
        recvs: &[RecvSpec],
    ) -> Result<Vec<Message>, NetError> {
        let wall_recv = Instant::now();
        let slots = if self.serial_rounds {
            self.recv_serial_checked(recvs)?
        } else {
            self.recv_all_checked(recvs)?
        };
        self.metrics.wall_recv_ns += wall_recv.elapsed().as_nanos() as u64;

        let mut out = Vec::with_capacity(recvs.len());
        let mut finish = max_send_done;
        for msg in slots {
            let completion = t0.max(msg.arrival)
                + self
                    .cost
                    .recv_cost_between(msg.src, self.rank, msg.payload.len() as u64);
            finish = finish.max(completion);
            out.push(msg);
        }
        self.clock = finish;
        self.metrics.record_round(sent_sizes, recvs.len());
        self.round_clock.advance(self.rank);
        Ok(out)
    }

    /// Complete all of a round's receives concurrently: poll every still
    /// outstanding `(from, tag)` with a non-blocking `try_match` so the
    /// `k` ports fill in *arrival* order (no head-of-line blocking on
    /// the first spec), and park in the transport's blocking `wait_any`
    /// when nothing is deliverable. One deadline covers the whole port
    /// group. Between waits the cluster's failure detector is checked,
    /// so a rank death anywhere interrupts this waiter with the
    /// cluster-wide [`NetError::RanksFailed`] verdict instead of letting
    /// it idle into an unattributed [`NetError::Timeout`]. Payload
    /// checksums are verified, surfacing wire corruption as
    /// [`NetError::Corrupt`].
    fn recv_all_checked(&mut self, recvs: &[RecvSpec]) -> Result<Vec<Message>, NetError> {
        let mut slots: Vec<Option<Message>> = (0..recvs.len()).map(|_| None).collect();
        let mut remaining = recvs.len();
        let deadline = Instant::now() + self.timeout;
        while remaining > 0 {
            self.deadline.check(self.rank)?;
            if let Some(det) = &self.detector {
                if det.version() > self.seen_version {
                    return Err(NetError::RanksFailed {
                        ranks: det.snapshot(),
                    });
                }
            }
            let mut progressed = false;
            for (slot, r) in slots.iter_mut().zip(recvs) {
                if slot.is_some() {
                    continue;
                }
                if let Some(msg) = self.transport.try_match(r.from, r.tag)? {
                    if !msg.checksum_ok() {
                        return Err(NetError::Corrupt {
                            rank: self.rank,
                            from: r.from,
                            tag: r.tag,
                        });
                    }
                    *slot = Some(msg);
                    remaining -= 1;
                    progressed = true;
                }
            }
            if remaining == 0 || progressed {
                continue;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Report the first unfilled spec — the same shape the
                // old serialized receive loop produced.
                let r = slots
                    .iter()
                    .zip(recvs)
                    .find(|(s, _)| s.is_none())
                    .map(|(_, r)| r)
                    .expect("remaining > 0");
                return Err(NetError::Timeout {
                    rank: self.rank,
                    from: r.from,
                    tag: r.tag,
                    waited: self.timeout,
                });
            }
            self.transport
                .wait_any(self.deadline.clamp(left.min(FAILOVER_POLL)))?;
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }

    /// Legacy serialized receive: complete the specs strictly in caller
    /// order, one at a time, polling `recv_match` in short slices. This
    /// is the pre-pipelining round engine — head-of-line blocking on the
    /// first spec and all — kept behind
    /// `ClusterConfig::with_serial_rounds` so the wire benchmark can
    /// measure the data plane this revision replaced. Error shapes match
    /// [`recv_all_checked`](Self::recv_all_checked).
    fn recv_serial_checked(&mut self, recvs: &[RecvSpec]) -> Result<Vec<Message>, NetError> {
        let mut out = Vec::with_capacity(recvs.len());
        for r in recvs {
            let deadline = Instant::now() + self.timeout;
            loop {
                self.deadline.check(self.rank)?;
                if let Some(det) = &self.detector {
                    if det.version() > self.seen_version {
                        return Err(NetError::RanksFailed {
                            ranks: det.snapshot(),
                        });
                    }
                }
                let slice = self.deadline.clamp(
                    deadline
                        .saturating_duration_since(Instant::now())
                        .min(FAILOVER_POLL),
                );
                match self.transport.recv_match(r.from, r.tag, slice) {
                    Ok(msg) => {
                        if !msg.checksum_ok() {
                            return Err(NetError::Corrupt {
                                rank: self.rank,
                                from: r.from,
                                tag: r.tag,
                            });
                        }
                        out.push(msg);
                        break;
                    }
                    Err(NetError::Timeout { .. }) => {
                        if Instant::now() >= deadline {
                            return Err(NetError::Timeout {
                                rank: self.rank,
                                from: r.from,
                                tag: r.tag,
                                waited: self.timeout,
                            });
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(out)
    }

    /// The ranks the cluster has agreed are dead (empty when no failure
    /// detector is installed, i.e. a plain non-resilient run).
    #[must_use]
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.detector
            .as_ref()
            .map_or_else(Vec::new, |d| d.snapshot())
    }

    /// Incorporate the cluster's failure verdict: returns a
    /// version-consistent `(version, dead ranks)` pair and stops receive
    /// waits from aborting on those now-acknowledged failures — only
    /// *newer* failures interrupt from here on.
    ///
    /// The version doubles as a retry **epoch**: the dead set is
    /// monotone and the version counts it, so any two ranks that
    /// acknowledged the same version hold exactly the same dead set and
    /// will build identical survivor groups. Resilient collectives tag
    /// each attempt with this epoch (see
    /// [`crate::comm::GroupComm::with_epoch`]) so ranks holding
    /// different views can never exchange mis-shaped messages.
    pub fn acknowledge_failures(&mut self) -> (u64, Vec<usize>) {
        match &self.detector {
            Some(det) => {
                let (version, dead) = det.consistent_snapshot();
                self.seen_version = version;
                (version, dead)
            }
            None => (0, Vec::new()),
        }
    }

    /// Discard every in-flight message queued at this rank — stale
    /// traffic from an aborted collective attempt, before retrying among
    /// survivors. Returns how many messages were discarded.
    pub fn purge_stale(&mut self) -> usize {
        self.transport.purge()
    }

    /// Drive the transport for one short slice without expecting data:
    /// the reliability sublayer gets a chance to re-acknowledge
    /// retransmitted frames. Anything delivered (stale duplicates) is
    /// discarded. Used by the cluster's linger phase so a rank that
    /// finishes first keeps answering acks until every peer is done.
    pub fn service(&mut self, slice: Duration) {
        let _ = self.transport.recv_any(slice);
    }

    /// Drain the reliability sublayer's unacked tail: block (while still
    /// pumping the protocol) until every windowed in-flight frame toward
    /// a live peer has been cumulatively acknowledged, or `deadline`
    /// passes. Ranks call this before declaring a phase complete so
    /// shutdown cannot race a frame that was sent but never made it out
    /// of the window.
    pub fn flush(&mut self, deadline: Instant) {
        let _ = self.transport.flush(deadline);
    }

    /// The paper's `send_and_recv` (Appendix A): send `payload` to rank
    /// `to` and receive one message from rank `from`, in one round.
    ///
    /// The returned buffer comes from the cluster pool; hand it back via
    /// [`Endpoint::recycle`] to keep the steady state allocation-free.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::round`].
    pub fn send_and_recv(
        &mut self,
        to: usize,
        payload: &[u8],
        from: usize,
        tag: Tag,
    ) -> Result<Vec<u8>, NetError> {
        let msgs = self.round(&[SendSpec { to, tag, payload }], &[RecvSpec { from, tag }])?;
        Ok(msgs
            .into_iter()
            .next()
            .expect("exactly one recv requested")
            .payload)
    }

    /// Borrowed-payload `send_and_recv`: the received bytes land in a
    /// prefix of `out` (no buffer changes hands) and the transport's
    /// pooled payload is recycled immediately. Returns the number of
    /// bytes received.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::round`]; additionally [`NetError::App`] if `out`
    /// is too small for the received message.
    pub fn send_and_recv_into(
        &mut self,
        to: usize,
        payload: &[u8],
        from: usize,
        tag: Tag,
        out: &mut [u8],
    ) -> Result<usize, NetError> {
        let msgs = self.round(&[SendSpec { to, tag, payload }], &[RecvSpec { from, tag }])?;
        let msg = msgs.into_iter().next().expect("exactly one recv requested");
        let len = msg.payload.len();
        let Some(dst) = out.get_mut(..len) else {
            return Err(NetError::App(format!(
                "send_and_recv_into: output buffer of {} bytes cannot hold {len}-byte message",
                out.len()
            )));
        };
        dst.copy_from_slice(&msg.payload);
        self.metrics.bytes_copied += len as u64;
        self.pool.recycle(msg.payload);
        Ok(len)
    }

    /// A round in which this rank neither sends nor receives, keeping its
    /// round counter aligned with ranks that do communicate.
    ///
    /// # Errors
    ///
    /// Fault-injection kills.
    pub fn idle_round(&mut self) -> Result<(), NetError> {
        self.round(&[], &[]).map(|_| ())
    }

    /// Synchronize with every other rank; clocks jump to the global max.
    /// Does not count as a communication round.
    pub fn barrier(&mut self) {
        self.clock = self.barrier.wait(self.clock);
    }

    /// The failure-detector version this endpoint has witnessed (via a
    /// round abort or [`Endpoint::acknowledge_failures`]). The cluster
    /// epilogue compares it against the final version to decide whether
    /// a rank that returned `Ok` actually saw the deaths the rest of the
    /// cluster agreed on.
    pub(crate) fn failures_seen(&self) -> u64 {
        self.seen_version
    }

    pub(crate) fn into_parts(mut self) -> (RankMetrics, f64) {
        // Fold the wire sublayers' counters (fault injection,
        // reliability) into this rank's metrics.
        self.metrics.link = self.metrics.link.merged(&self.transport.link_stats());
        (self.metrics, self.clock)
    }
}

impl core::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("ports", &self.ports)
            .field("clock", &self.clock)
            .field("rounds", &self.metrics.rounds())
            .finish_non_exhaustive()
    }
}

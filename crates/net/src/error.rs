//! Error type for the message-passing substrate.

use core::fmt;
use std::time::Duration;

/// Everything that can go wrong inside the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A receive did not complete within the configured timeout — the
    /// sender is dead, the message was dropped by fault injection, or the
    /// algorithm deadlocked.
    Timeout {
        /// Waiting rank.
        rank: usize,
        /// Expected source rank.
        from: usize,
        /// Expected message tag.
        tag: u64,
        /// How long the rank waited.
        waited: Duration,
    },
    /// A round tried to use more ports than the model allows.
    PortLimit {
        /// Offending rank.
        rank: usize,
        /// Number of sends or receives requested.
        requested: usize,
        /// Configured port count `k`.
        ports: usize,
        /// `"send"` or `"recv"`.
        direction: &'static str,
    },
    /// Two messages in one round share a destination (or source) — the
    /// model requires `k` *distinct* peers per round.
    DuplicatePeer {
        /// Offending rank.
        rank: usize,
        /// The repeated peer.
        peer: usize,
    },
    /// A rank addressed itself or a rank outside `[0, n)`.
    BadPeer {
        /// Offending rank.
        rank: usize,
        /// The invalid peer.
        peer: usize,
        /// Cluster size.
        size: usize,
    },
    /// The peer's endpoint hung up (its thread exited early).
    Disconnected {
        /// Rank whose channel is gone.
        peer: usize,
    },
    /// Fault injection killed this rank.
    Killed {
        /// The dead rank.
        rank: usize,
        /// The round after which it died.
        after_round: u64,
    },
    /// A payload arrived with a checksum mismatch — the wire corrupted
    /// it in flight. Only reachable without the reliability sublayer,
    /// which discards damaged frames and waits for the retransmission.
    Corrupt {
        /// Receiving rank that detected the mismatch.
        rank: usize,
        /// Claimed source rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// The caller-set completion deadline expired before the collective
    /// finished. Unlike [`Timeout`](Self::Timeout) — which means one
    /// receive starved for the per-round patience window — this is the
    /// *budget* verdict: the whole call ran out of wall-clock, and every
    /// rank sharing the deadline observes it within one poll slice.
    DeadlineExceeded {
        /// Rank that observed the expiry.
        rank: usize,
        /// The budget that was set for the call.
        budget: Duration,
    },
    /// The cluster-wide failure verdict: the listed ranks were declared
    /// dead (killed by fault injection, or unreachable past the
    /// reliability layer's retry cap). Every survivor of the same run
    /// observes the same variant, so callers can agree on the survivor
    /// set and shrink-and-retry (see `Cluster::run_resilient`).
    RanksFailed {
        /// The dead ranks, ascending.
        ranks: Vec<usize>,
    },
    /// An application-level failure surfaced through the SPMD body.
    App(String),
}

impl NetError {
    /// Whether this error is a rank failure that a shrink-and-retry
    /// recovery path can survive (as opposed to a programming error or
    /// an unattributed timeout).
    #[must_use]
    pub fn is_rank_failure(&self) -> bool {
        matches!(self, Self::Killed { .. } | Self::RanksFailed { .. })
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout { rank, from, tag, waited } => write!(
                f,
                "rank {rank}: timed out after {waited:?} waiting for message from {from} (tag {tag})"
            ),
            Self::PortLimit { rank, requested, ports, direction } => write!(
                f,
                "rank {rank}: {requested} {direction}s in one round exceeds k={ports} ports"
            ),
            Self::DuplicatePeer { rank, peer } => {
                write!(f, "rank {rank}: duplicate peer {peer} in one round")
            }
            Self::BadPeer { rank, peer, size } => {
                write!(f, "rank {rank}: invalid peer {peer} (cluster size {size})")
            }
            Self::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            Self::Killed { rank, after_round } => {
                write!(f, "rank {rank} killed by fault injection after round {after_round}")
            }
            Self::Corrupt { rank, from, tag } => write!(
                f,
                "rank {rank}: checksum mismatch on message from {from} (tag {tag})"
            ),
            Self::DeadlineExceeded { rank, budget } => {
                write!(f, "rank {rank}: deadline exceeded ({budget:?} budget)")
            }
            Self::RanksFailed { ranks } => write!(f, "ranks {ranks:?} failed"),
            Self::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::Timeout {
            rank: 3,
            from: 7,
            tag: 42,
            waited: Duration::from_secs(1),
        };
        let s = e.to_string();
        assert!(s.contains("rank 3") && s.contains("from 7") && s.contains("42"));

        let e = NetError::PortLimit {
            rank: 1,
            requested: 3,
            ports: 2,
            direction: "send",
        };
        assert!(e.to_string().contains("exceeds k=2"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            NetError::Disconnected { peer: 1 },
            NetError::Disconnected { peer: 1 }
        );
        assert_ne!(
            NetError::Disconnected { peer: 1 },
            NetError::Disconnected { peer: 2 }
        );
    }
}

//! Empirical complexity accounting.
//!
//! Each rank records, per round, the size of the largest message it sent;
//! after the run these per-rank series fold into the paper's global
//! measures: `C1` = number of rounds, `C2` = Σ over rounds of the largest
//! message over *all* ports of *all* processors (§1.2).

use bruck_model::complexity::Complexity;

use crate::pool::PoolStats;

/// Counters from the wire sublayers (fault injection and reliability),
/// per rank, folded into [`RankMetrics`] after the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Retransmissions the reliability layer performed after an ack
    /// deadline expired.
    pub retransmits: u64,
    /// Acknowledgements sent by the reliability layer.
    pub acks_sent: u64,
    /// Duplicate data messages the reliability layer discarded.
    pub dups_dropped: u64,
    /// Checksum-failing data messages the reliability layer discarded
    /// (healed by the sender's retransmission).
    pub corrupt_dropped: u64,
    /// Transmissions the fault injector silently discarded.
    pub injected_losses: u64,
    /// Transmissions the fault injector duplicated.
    pub injected_dups: u64,
    /// Transmissions the fault injector corrupted.
    pub injected_corruptions: u64,
    /// Transmissions the fault injector delayed in virtual time.
    pub injected_delays: u64,
}

impl LinkStats {
    /// Field-wise sum of two stat sets (stacked wrappers, or folding
    /// ranks into run totals).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            retransmits: self.retransmits + other.retransmits,
            acks_sent: self.acks_sent + other.acks_sent,
            dups_dropped: self.dups_dropped + other.dups_dropped,
            corrupt_dropped: self.corrupt_dropped + other.corrupt_dropped,
            injected_losses: self.injected_losses + other.injected_losses,
            injected_dups: self.injected_dups + other.injected_dups,
            injected_corruptions: self.injected_corruptions + other.injected_corruptions,
            injected_delays: self.injected_delays + other.injected_delays,
        }
    }
}

/// Counters owned by one rank (no sharing, no atomics — folded after the
/// run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankMetrics {
    /// Per-round maximum sent-message size in bytes (0 for idle rounds).
    pub round_send_max: Vec<u64>,
    /// Total messages sent.
    pub msgs_sent: u64,
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total messages received.
    pub msgs_received: u64,
    /// Bytes physically copied by the data plane on this rank (payload
    /// staging into pooled buffers and `_into` copy-outs).
    pub bytes_copied: u64,
    /// Wire-sublayer counters (fault injection + reliability).
    pub link: LinkStats,
}

impl RankMetrics {
    /// Number of rounds this rank participated in.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.round_send_max.len() as u64
    }

    /// Record one round.
    pub fn record_round(&mut self, sent_sizes: &[u64], received: usize) {
        self.round_send_max
            .push(sent_sizes.iter().copied().max().unwrap_or(0));
        self.msgs_sent += sent_sizes.len() as u64;
        self.bytes_sent += sent_sizes.iter().sum::<u64>();
        self.msgs_received += received as u64;
    }
}

/// Folded metrics for a whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// One entry per rank.
    pub per_rank: Vec<RankMetrics>,
    /// Buffer-pool activity over the whole run (cluster-shared pool).
    pub pool: PoolStats,
}

impl RunMetrics {
    /// The global complexity, if all ranks executed the same number of
    /// rounds (required for the paper's synchronized-round measures to be
    /// well defined). `None` when ranks disagree on the round count.
    #[must_use]
    pub fn global_complexity(&self) -> Option<Complexity> {
        let rounds = self.per_rank.first().map_or(0, |r| r.round_send_max.len());
        if !self
            .per_rank
            .iter()
            .all(|r| r.round_send_max.len() == rounds)
        {
            return None;
        }
        let mut c2 = 0u64;
        for round in 0..rounds {
            c2 += self
                .per_rank
                .iter()
                .map(|r| r.round_send_max[round])
                .max()
                .unwrap_or(0);
        }
        Some(Complexity::new(rounds as u64, c2))
    }

    /// Total bytes moved across the whole cluster.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total messages across the whole cluster.
    #[must_use]
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// The maximum bytes any single rank sent — per-node load balance.
    #[must_use]
    pub fn max_rank_bytes(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.bytes_sent)
            .max()
            .unwrap_or(0)
    }

    /// Total bytes physically copied by the data plane across all ranks.
    #[must_use]
    pub fn total_bytes_copied(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_copied).sum()
    }

    /// Wire-sublayer counters summed over all ranks: retransmissions,
    /// acks, discarded duplicates/corruptions, and injected faults.
    #[must_use]
    pub fn link_totals(&self) -> LinkStats {
        self.per_rank
            .iter()
            .fold(LinkStats::default(), |acc, r| acc.merged(&r.link))
    }

    /// Total reliability-layer retransmissions across all ranks.
    #[must_use]
    pub fn total_retransmits(&self) -> u64 {
        self.link_totals().retransmits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fold() {
        let mut a = RankMetrics::default();
        a.record_round(&[10, 20], 1);
        a.record_round(&[], 2);
        let mut b = RankMetrics::default();
        b.record_round(&[5], 0);
        b.record_round(&[30], 0);
        let run = RunMetrics {
            per_rank: vec![a, b],
            pool: PoolStats::default(),
        };
        // Round 0 max = 20, round 1 max = 30.
        assert_eq!(run.global_complexity(), Some(Complexity::new(2, 50)));
        assert_eq!(run.total_bytes(), 65);
        assert_eq!(run.total_msgs(), 4);
        assert_eq!(run.max_rank_bytes(), 35);
    }

    #[test]
    fn misaligned_rounds_yield_none() {
        let mut a = RankMetrics::default();
        a.record_round(&[1], 0);
        let b = RankMetrics::default();
        let run = RunMetrics {
            per_rank: vec![a, b],
            pool: PoolStats::default(),
        };
        assert_eq!(run.global_complexity(), None);
    }

    #[test]
    fn empty_run() {
        let run = RunMetrics::default();
        assert_eq!(run.global_complexity(), Some(Complexity::ZERO));
        assert_eq!(run.total_bytes(), 0);
    }
}

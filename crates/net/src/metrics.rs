//! Empirical complexity accounting.
//!
//! Each rank records, per round, the size of the largest message it sent;
//! after the run these per-rank series fold into the paper's global
//! measures: `C1` = number of rounds, `C2` = Σ over rounds of the largest
//! message over *all* ports of *all* processors (§1.2).

use bruck_model::calibrate::LinearFit;
use bruck_model::complexity::Complexity;

use crate::membership::MembershipStats;
use crate::pool::PoolStats;

/// Counters from the wire sublayers (fault injection and reliability),
/// per rank, folded into [`RankMetrics`] after the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Retransmissions the reliability layer performed after an ack
    /// deadline expired.
    pub retransmits: u64,
    /// Acknowledgements sent by the reliability layer.
    pub acks_sent: u64,
    /// Duplicate data messages the reliability layer discarded.
    pub dups_dropped: u64,
    /// Checksum-failing data messages the reliability layer discarded
    /// (healed by the sender's retransmission).
    pub corrupt_dropped: u64,
    /// Transmissions the fault injector silently discarded.
    pub injected_losses: u64,
    /// Transmissions the fault injector duplicated.
    pub injected_dups: u64,
    /// Transmissions the fault injector corrupted.
    pub injected_corruptions: u64,
    /// Transmissions the fault injector delayed in virtual time.
    pub injected_delays: u64,
    /// Acknowledgements conveyed by piggybacking on reverse-path data
    /// frames (window-opening information that cost zero extra frames).
    pub piggyback_acks: u64,
    /// Selective-ack entries sent on dedicated ack frames.
    pub sack_entries_sent: u64,
    /// Sum over data transmissions of the link's in-flight frame count
    /// at transmit time (numerator of the average window occupancy).
    pub window_occupancy_sum: u64,
    /// Number of data transmissions sampled into
    /// [`window_occupancy_sum`](Self::window_occupancy_sum).
    pub window_samples: u64,
    /// Explicit watchdog probe frames sent when a watched link idled.
    pub probes_sent: u64,
    /// Probe replies this rank sent back to a probing peer.
    pub probe_replies: u64,
    /// Watchdog escalations honoured by the failure detector: a watched
    /// peer exhausted its probe budget and was declared unreachable.
    pub stall_escalations: u64,
    /// Transmissions the fault injector cut on a severed link or across
    /// an active partition (data, ack, and retransmission frames alike).
    pub partition_cuts: u64,
    /// Dedicated ack frames the fault injector silently discarded
    /// (ack-path fault injection; healed by sender retransmission).
    pub injected_ack_losses: u64,
}

impl LinkStats {
    /// Field-wise sum of two stat sets (stacked wrappers, or folding
    /// ranks into run totals).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            retransmits: self.retransmits + other.retransmits,
            acks_sent: self.acks_sent + other.acks_sent,
            dups_dropped: self.dups_dropped + other.dups_dropped,
            corrupt_dropped: self.corrupt_dropped + other.corrupt_dropped,
            injected_losses: self.injected_losses + other.injected_losses,
            injected_dups: self.injected_dups + other.injected_dups,
            injected_corruptions: self.injected_corruptions + other.injected_corruptions,
            injected_delays: self.injected_delays + other.injected_delays,
            piggyback_acks: self.piggyback_acks + other.piggyback_acks,
            sack_entries_sent: self.sack_entries_sent + other.sack_entries_sent,
            window_occupancy_sum: self.window_occupancy_sum + other.window_occupancy_sum,
            window_samples: self.window_samples + other.window_samples,
            probes_sent: self.probes_sent + other.probes_sent,
            probe_replies: self.probe_replies + other.probe_replies,
            stall_escalations: self.stall_escalations + other.stall_escalations,
            partition_cuts: self.partition_cuts + other.partition_cuts,
            injected_ack_losses: self.injected_ack_losses + other.injected_ack_losses,
        }
    }

    /// Mean in-flight frames per link at data-transmit time — how full
    /// the sliding window actually ran. `1.0` is stop-and-wait; values
    /// approaching the configured window mean the pipeline stayed fed.
    #[must_use]
    pub fn avg_window_occupancy(&self) -> f64 {
        if self.window_samples == 0 {
            return 0.0;
        }
        self.window_occupancy_sum as f64 / self.window_samples as f64
    }

    /// Fraction of acknowledgement information that rode on reverse-path
    /// data frames instead of dedicated ack frames.
    #[must_use]
    pub fn piggyback_ratio(&self) -> f64 {
        let total = self.piggyback_acks + self.acks_sent;
        if total == 0 {
            return 0.0;
        }
        self.piggyback_acks as f64 / total as f64
    }
}

/// Connection-lifecycle counters from a shared data plane (the TCP
/// fabric): healing, backoff, and fabric-level fault injection. One
/// instance per run — the fabric is shared, so unlike [`LinkStats`]
/// these are not per-rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Node-pair streams torn down by an I/O error, EOF, or an injected
    /// reset (each outage starts one reconnect cycle).
    pub link_failures: u64,
    /// Successful stream re-establishments (handshake completed and
    /// traffic resumed on the healed link).
    pub reconnects: u64,
    /// Reconnect attempts that failed (connect/handshake error, injected
    /// handshake drop, or handshake timeout) and fell back to backoff.
    pub reconnect_failures: u64,
    /// Node pairs whose per-outage reconnect budget was exhausted: the
    /// pair is declared dead and a node-level eviction is raised.
    pub pairs_evicted: u64,
    /// Total nanoseconds links spent down (from teardown to heal),
    /// summed over outages — the backoff/outage dwell time.
    pub backoff_ns: u64,
    /// Injected connection resets ([`FaultPlan`](crate::FaultPlan)
    /// socket events) the fabric executed.
    pub injected_resets: u64,
    /// Injected half-open stalls the fabric executed.
    pub injected_stalls: u64,
    /// Injected handshake drops consumed during reconnect attempts.
    pub injected_handshake_drops: u64,
    /// Bytes dropped by outbox backpressure: the per-stream outbox hit
    /// its byte cap (dead or wedged peer) and the frame was discarded
    /// for the ARQ layer to re-drive.
    pub outbox_shed_bytes: u64,
}

impl FabricStats {
    /// Field-wise sum (folding attempts of a resilient run).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            link_failures: self.link_failures + other.link_failures,
            reconnects: self.reconnects + other.reconnects,
            reconnect_failures: self.reconnect_failures + other.reconnect_failures,
            pairs_evicted: self.pairs_evicted + other.pairs_evicted,
            backoff_ns: self.backoff_ns + other.backoff_ns,
            injected_resets: self.injected_resets + other.injected_resets,
            injected_stalls: self.injected_stalls + other.injected_stalls,
            injected_handshake_drops: self.injected_handshake_drops
                + other.injected_handshake_drops,
            outbox_shed_bytes: self.outbox_shed_bytes + other.outbox_shed_bytes,
        }
    }
}

/// Counters owned by one rank (no sharing, no atomics — folded after the
/// run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankMetrics {
    /// Per-round maximum sent-message size in bytes (0 for idle rounds).
    pub round_send_max: Vec<u64>,
    /// Total messages sent.
    pub msgs_sent: u64,
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total messages received.
    pub msgs_received: u64,
    /// Bytes physically copied by the data plane on this rank (payload
    /// staging into pooled buffers and `_into` copy-outs).
    pub bytes_copied: u64,
    /// Bytes staged through the gather fast path: span lists copied
    /// straight from algorithm scratch into the transport's pooled
    /// buffer, skipping the separate pack step (each such byte saved one
    /// whole memcpy relative to pack-then-stage).
    pub bytes_gathered: u64,
    /// Wall-clock nanoseconds this rank spent in the send phase of its
    /// rounds (staging + injecting all k sends).
    pub wall_send_ns: u64,
    /// Wall-clock nanoseconds this rank spent in the receive phase of
    /// its rounds (waiting for and collecting all k receives).
    pub wall_recv_ns: u64,
    /// Wire-sublayer counters (fault injection + reliability).
    pub link: LinkStats,
}

impl RankMetrics {
    /// Number of rounds this rank participated in.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.round_send_max.len() as u64
    }

    /// Record one round.
    pub fn record_round(&mut self, sent_sizes: &[u64], received: usize) {
        self.round_send_max
            .push(sent_sizes.iter().copied().max().unwrap_or(0));
        self.msgs_sent += sent_sizes.len() as u64;
        self.bytes_sent += sent_sizes.iter().sum::<u64>();
        self.msgs_received += received as u64;
    }
}

/// Folded metrics for a whole run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// One entry per rank.
    pub per_rank: Vec<RankMetrics>,
    /// Buffer-pool activity over the whole run (cluster-shared pool).
    pub pool: PoolStats,
    /// Membership-view counters (view changes, evictions, rejoins,
    /// quarantines). Zero for plain [`Cluster::run`](crate::cluster::Cluster::run);
    /// filled by [`Cluster::run_resilient`](crate::cluster::Cluster::run_resilient)
    /// from its view log.
    pub membership: MembershipStats,
    /// Connection-lifecycle counters from the shared TCP fabric
    /// (reconnects, evictions, backoff dwell, fabric-level fault
    /// injection). Zero on the thread-per-rank substrates, which have no
    /// shared data plane.
    pub fabric: FabricStats,
    /// The calibration fit the run was planned under, when the harness
    /// calibrated one (`None` for uncalibrated runs). Carrying it here
    /// keeps the fit quality — `r_squared` in particular — attached to
    /// the numbers it produced: a plan chosen under R² < 0.5 is a
    /// guess, and downstream consumers (bench JSON, `bruckctl`) must be
    /// able to see that without re-deriving the fit.
    pub fit: Option<LinearFit>,
}

impl RunMetrics {
    /// The global complexity, if all ranks executed the same number of
    /// rounds (required for the paper's synchronized-round measures to be
    /// well defined). `None` when ranks disagree on the round count.
    #[must_use]
    pub fn global_complexity(&self) -> Option<Complexity> {
        let rounds = self.per_rank.first().map_or(0, |r| r.round_send_max.len());
        if !self
            .per_rank
            .iter()
            .all(|r| r.round_send_max.len() == rounds)
        {
            return None;
        }
        let mut c2 = 0u64;
        for round in 0..rounds {
            c2 += self
                .per_rank
                .iter()
                .map(|r| r.round_send_max[round])
                .max()
                .unwrap_or(0);
        }
        Some(Complexity::new(rounds as u64, c2))
    }

    /// Total bytes moved across the whole cluster.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total messages across the whole cluster.
    #[must_use]
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// The maximum bytes any single rank sent — per-node load balance.
    #[must_use]
    pub fn max_rank_bytes(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.bytes_sent)
            .max()
            .unwrap_or(0)
    }

    /// Total bytes physically copied by the data plane across all ranks.
    #[must_use]
    pub fn total_bytes_copied(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_copied).sum()
    }

    /// Total bytes staged through the gather fast path across all ranks
    /// (see [`RankMetrics::bytes_gathered`]).
    #[must_use]
    pub fn total_bytes_gathered(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_gathered).sum()
    }

    /// Wire-sublayer counters summed over all ranks: retransmissions,
    /// acks, discarded duplicates/corruptions, and injected faults.
    #[must_use]
    pub fn link_totals(&self) -> LinkStats {
        self.per_rank
            .iter()
            .fold(LinkStats::default(), |acc, r| acc.merged(&r.link))
    }

    /// Total reliability-layer retransmissions across all ranks.
    #[must_use]
    pub fn total_retransmits(&self) -> u64 {
        self.link_totals().retransmits
    }

    /// Mean payload bytes the cluster moved per round (total bytes over
    /// the per-rank maximum round count) — the executed-round density the
    /// pipelining work is trying to keep high.
    #[must_use]
    pub fn bytes_per_round(&self) -> f64 {
        let rounds = self
            .per_rank
            .iter()
            .map(RankMetrics::rounds)
            .max()
            .unwrap_or(0);
        if rounds == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / rounds as f64
    }

    /// Wall-clock totals across ranks as `(send_phase, recv_phase)`
    /// nanoseconds — where executed rounds actually spent their time.
    #[must_use]
    pub fn wall_phase_ns(&self) -> (u64, u64) {
        self.per_rank
            .iter()
            .fold((0, 0), |(s, r), m| (s + m.wall_send_ns, r + m.wall_recv_ns))
    }

    /// Mean window occupancy over every rank's reliability sublayer.
    #[must_use]
    pub fn avg_window_occupancy(&self) -> f64 {
        self.link_totals().avg_window_occupancy()
    }

    /// Piggybacked-ack ratio over every rank's reliability sublayer.
    #[must_use]
    pub fn piggyback_ratio(&self) -> f64 {
        self.link_totals().piggyback_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fold() {
        let mut a = RankMetrics::default();
        a.record_round(&[10, 20], 1);
        a.record_round(&[], 2);
        let mut b = RankMetrics::default();
        b.record_round(&[5], 0);
        b.record_round(&[30], 0);
        let run = RunMetrics {
            per_rank: vec![a, b],
            ..RunMetrics::default()
        };
        // Round 0 max = 20, round 1 max = 30.
        assert_eq!(run.global_complexity(), Some(Complexity::new(2, 50)));
        assert_eq!(run.total_bytes(), 65);
        assert_eq!(run.total_msgs(), 4);
        assert_eq!(run.max_rank_bytes(), 35);
    }

    #[test]
    fn misaligned_rounds_yield_none() {
        let mut a = RankMetrics::default();
        a.record_round(&[1], 0);
        let b = RankMetrics::default();
        let run = RunMetrics {
            per_rank: vec![a, b],
            ..RunMetrics::default()
        };
        assert_eq!(run.global_complexity(), None);
    }

    #[test]
    fn empty_run() {
        let run = RunMetrics::default();
        assert_eq!(run.global_complexity(), Some(Complexity::ZERO));
        assert_eq!(run.total_bytes(), 0);
        assert_eq!(run.bytes_per_round(), 0.0);
        assert_eq!(run.avg_window_occupancy(), 0.0);
        assert_eq!(run.piggyback_ratio(), 0.0);
    }

    #[test]
    fn window_and_piggyback_ratios() {
        let link = LinkStats {
            acks_sent: 3,
            piggyback_acks: 9,
            window_occupancy_sum: 24,
            window_samples: 8,
            ..LinkStats::default()
        };
        assert!((link.avg_window_occupancy() - 3.0).abs() < 1e-12);
        assert!((link.piggyback_ratio() - 0.75).abs() < 1e-12);
        let doubled = link.merged(&link);
        assert!((doubled.avg_window_occupancy() - 3.0).abs() < 1e-12);
        assert!((doubled.piggyback_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fabric_stats_merge_field_wise() {
        let a = FabricStats {
            link_failures: 2,
            reconnects: 1,
            reconnect_failures: 3,
            pairs_evicted: 1,
            backoff_ns: 500,
            injected_resets: 2,
            injected_stalls: 1,
            injected_handshake_drops: 4,
            outbox_shed_bytes: 128,
        };
        let sum = a.merged(&a);
        assert_eq!(sum.link_failures, 4);
        assert_eq!(sum.reconnects, 2);
        assert_eq!(sum.reconnect_failures, 6);
        assert_eq!(sum.pairs_evicted, 2);
        assert_eq!(sum.backoff_ns, 1000);
        assert_eq!(sum.injected_resets, 4);
        assert_eq!(sum.injected_stalls, 2);
        assert_eq!(sum.injected_handshake_drops, 8);
        assert_eq!(sum.outbox_shed_bytes, 256);
        assert_eq!(FabricStats::default().merged(&a), a);
    }

    #[test]
    fn bytes_per_round_and_wall_phases() {
        let mut a = RankMetrics::default();
        a.record_round(&[10, 20], 1);
        a.record_round(&[30], 0);
        a.wall_send_ns = 100;
        a.wall_recv_ns = 300;
        let mut b = RankMetrics::default();
        b.record_round(&[40], 1);
        b.wall_send_ns = 50;
        b.wall_recv_ns = 150;
        let run = RunMetrics {
            per_rank: vec![a, b],
            ..RunMetrics::default()
        };
        // 100 bytes over max(2, 1) = 2 rounds.
        assert!((run.bytes_per_round() - 50.0).abs() < 1e-12);
        assert_eq!(run.wall_phase_ns(), (150, 450));
    }
}

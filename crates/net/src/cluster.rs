//! The SPMD cluster runner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use bruck_model::cost::{CostModel, LinearModel};

use crate::deadline::Deadline;
use crate::endpoint::Endpoint;
use crate::error::NetError;
use crate::failure::FailureDetector;
use crate::fault::{FaultPlan, FaultyTransport, RoundClock};
use crate::mailbox::Mailbox;
use crate::membership::{Membership, RecoveryPolicy};
use crate::metrics::RunMetrics;
use crate::pool::BufferPool;
use crate::reliable::{Reliability, ReliableTransport};
use crate::trace::Trace;
use crate::transport::ChannelTransport;
use crate::vbarrier::VBarrier;

/// Configuration for one cluster run.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of simulated processors.
    pub n: usize,
    /// Ports per processor (`k`).
    pub ports: usize,
    /// Virtual-time cost model.
    pub cost: Arc<dyn CostModel>,
    /// Record a [`Trace`] of every send.
    pub trace: bool,
    /// Receive timeout (deadlock/fault detector).
    pub timeout: Duration,
    /// Injected faults.
    pub faults: Arc<FaultPlan>,
    /// Ack/retransmit reliability sublayer (None = raw wire).
    pub reliability: Option<Reliability>,
    /// Use the legacy serialized round engine (receives complete in
    /// spec order with sliced polling) instead of the concurrent one.
    /// Benchmark-baseline compatibility only.
    pub serial_rounds: bool,
    /// Wall-clock completion budget for the whole run: every rank arms
    /// its [`Deadline`] against one shared expiry instant, so a stalled
    /// or partitioned run fails on *all* survivors with a structured
    /// [`NetError::DeadlineExceeded`] within one poll slice of the
    /// budget — no hangs, ever. `None` (the default) disables the
    /// budget; unarmed deadline checks cost one atomic load.
    /// Under [`Cluster::run_resilient`] the budget is re-armed fresh
    /// for each shrink-and-retry attempt.
    pub deadline: Option<Duration>,
    /// How [`Cluster::run_resilient`] reacts to rank failures between
    /// attempts: shrink and continue (the default), wait at the
    /// collective boundary for quarantined ranks to rejoin, or abort
    /// once membership falls below a quorum. See [`RecoveryPolicy`].
    pub recovery: RecoveryPolicy,
    /// Flap-damping base: the quarantine window a rank earns on its
    /// first eviction. Each further eviction of the same rank doubles
    /// it (`base · 2^(flaps−1)`, capped at
    /// [`MAX_QUARANTINE`](crate::membership::MAX_QUARANTINE)), so a
    /// flapping rank is excluded for exponentially longer each time.
    /// Only consulted under [`RecoveryPolicy::WaitForRejoin`].
    pub quarantine: Duration,
    /// Topology: ranks per node. `Some(s)` groups ranks `[0,s)`,
    /// `[s,2s)`, … onto simulated nodes — the TCP scale cluster
    /// ([`crate::tcp::TcpScaleCluster`]) routes intra-node traffic over
    /// in-process channels and inter-node traffic over one TCP stream
    /// per node pair, and the hierarchical planner can exploit the same
    /// grouping. `None` (the default) means a flat, single-node
    /// topology.
    pub node_size: Option<usize>,
    /// Override for the TCP fabric's connection-healing machinery
    /// (reconnect with backoff, outbox preservation, node eviction).
    /// `None` (the default) arms healing automatically whenever the
    /// reliability sublayer or socket-level faults are configured;
    /// `Some(false)` forces the legacy fail-fast reactor even then
    /// (the lever the recovery A/B bench pulls); `Some(true)` arms it
    /// unconditionally. Only consulted by
    /// [`crate::tcp::TcpScaleCluster`].
    pub healing: Option<bool>,
}

impl ClusterConfig {
    /// `n` processors, 1 port, SP-1 linear cost model, 10 s timeout,
    /// no tracing, no faults.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "cluster needs at least one processor");
        Self {
            n,
            ports: 1,
            cost: Arc::new(LinearModel::sp1()),
            trace: false,
            timeout: Duration::from_secs(10),
            faults: Arc::new(FaultPlan::new()),
            reliability: None,
            serial_rounds: false,
            deadline: None,
            recovery: RecoveryPolicy::default(),
            quarantine: crate::membership::DEFAULT_BASE_QUARANTINE,
            node_size: None,
            healing: None,
        }
    }

    /// Set the port count `k`.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    #[must_use]
    pub fn with_ports(mut self, ports: usize) -> Self {
        assert!(ports >= 1, "need at least one port");
        self.ports = ports;
        self
    }

    /// Set the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = cost;
        self
    }

    /// Enable trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Set the receive timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Install a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Arc::new(faults);
        self
    }

    /// Enable the ack/retransmit reliability sublayer (with the given
    /// tuning) under every rank's transport.
    #[must_use]
    pub fn with_reliability(mut self, reliability: Reliability) -> Self {
        self.reliability = Some(reliability);
        self
    }

    /// Bound the whole run by a wall-clock completion budget (see
    /// [`ClusterConfig::deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Set the recovery policy [`Cluster::run_resilient`] applies at
    /// collective boundaries (see [`ClusterConfig::recovery`]).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Set the flap-damping base quarantine window (see
    /// [`ClusterConfig::quarantine`]).
    #[must_use]
    pub fn with_quarantine(mut self, base: Duration) -> Self {
        self.quarantine = base;
        self
    }

    /// Group ranks onto simulated nodes of `node_size` ranks each (see
    /// [`ClusterConfig::node_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `node_size == 0` or `n % node_size != 0` — the
    /// two-level machinery requires uniform nodes.
    #[must_use]
    pub fn with_node_size(mut self, node_size: usize) -> Self {
        assert!(node_size >= 1, "need at least one rank per node");
        assert_eq!(
            self.n % node_size,
            0,
            "node_size {node_size} must divide n = {}",
            self.n
        );
        self.node_size = Some(node_size);
        self
    }

    /// Override the TCP fabric's connection-healing machinery (see
    /// [`ClusterConfig::healing`]).
    #[must_use]
    pub fn with_healing(mut self, healing: bool) -> Self {
        self.healing = Some(healing);
        self
    }

    /// Run rounds on the legacy serialized receive engine (see
    /// [`ClusterConfig::serial_rounds`]). Pair with
    /// [`WireTuning::stop_and_wait`](bruck_model::tuning::WireTuning::stop_and_wait)
    /// to reproduce the pre-pipelining data plane for benchmarking.
    #[must_use]
    pub fn with_serial_rounds(mut self, serial: bool) -> Self {
        self.serial_rounds = serial;
        self
    }
}

impl core::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("n", &self.n)
            .field("ports", &self.ports)
            .field("cost", &self.cost.name())
            .field("trace", &self.trace)
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Folded communication metrics.
    pub metrics: RunMetrics,
    /// Per-rank virtual completion times (after a final clock sync, all
    /// equal to the max; kept per-rank for skew analysis before sync).
    pub virtual_times: Vec<f64>,
    /// The trace, if tracing was enabled.
    pub trace: Option<Trace>,
}

impl<T> RunOutput<T> {
    /// The virtual makespan: the latest rank completion time.
    #[must_use]
    pub fn virtual_makespan(&self) -> f64 {
        self.virtual_times.iter().copied().fold(0.0, f64::max)
    }
}

/// Root-cause ordering over error kinds: lower sorts earlier. A killed
/// rank *causes* its peers' timeouts; corruption causes a receiver abort
/// that strands its peers; the cluster-wide `RanksFailed` verdict is by
/// construction a *reaction* to some earlier failure, and an
/// unattributed timeout is the least informative symptom of all — so
/// aggregation prefers the lowest severity rank error.
fn severity(e: &NetError) -> u8 {
    match e {
        NetError::Killed { .. } => 0,
        NetError::Corrupt { .. } => 1,
        NetError::App(_) => 2,
        NetError::PortLimit { .. } | NetError::BadPeer { .. } | NetError::DuplicatePeer { .. } => 3,
        NetError::Disconnected { .. } => 4,
        NetError::Timeout { .. } => 5,
        NetError::DeadlineExceeded { .. } => 6,
        NetError::RanksFailed { .. } => 7,
    }
}

/// The uncollapsed outcome of a run: every rank's individual result,
/// plus the cluster's failure verdict. [`Cluster::try_run`] returns this
/// so callers (tests, the shrink-and-retry loop, chaos harnesses) can
/// inspect exactly what each rank observed.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-rank results, indexed by rank.
    pub outcomes: Vec<Result<T, NetError>>,
    /// Folded communication metrics (all ranks, failed or not).
    pub metrics: RunMetrics,
    /// Per-rank virtual completion times.
    pub virtual_times: Vec<f64>,
    /// The trace, if tracing was enabled.
    pub trace: Option<Trace>,
    /// The failure detector's final verdict: ranks the cluster agreed
    /// are dead, ascending.
    pub failed: Vec<usize>,
}

impl<T> RunReport<T> {
    /// The root cause of the run's failure, if any: the minimum-severity
    /// error (see [`severity`]), ties broken by lowest rank. This is how
    /// a killed rank's `Killed` wins over the survivors' reactions.
    #[must_use]
    pub fn root_cause(&self) -> Option<(usize, &NetError)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(rank, o)| o.as_ref().err().map(|e| (rank, e)))
            .min_by_key(|(rank, e)| (severity(e), *rank))
    }

    /// Collapse into a [`RunOutput`], surfacing the root cause as the
    /// error if any rank failed.
    ///
    /// # Errors
    ///
    /// The root-cause error.
    pub fn into_result(self) -> Result<RunOutput<T>, NetError> {
        if let Some((_, e)) = self.root_cause() {
            return Err(e.clone());
        }
        Ok(RunOutput {
            results: self
                .outcomes
                .into_iter()
                .map(|o| o.expect("no errors per root_cause"))
                .collect(),
            metrics: self.metrics,
            virtual_times: self.virtual_times,
            trace: self.trace,
        })
    }
}

/// The membership a shrink-and-retry attempt runs under: dense ranks
/// `0..n` mapped back to the original cluster's rank ids.
#[derive(Debug, Clone)]
pub struct SurvivorView {
    /// Which attempt this is (0 = the original membership).
    pub attempt: usize,
    /// Original cluster size.
    pub original_n: usize,
    /// `original_ranks[dense]` = the original id of dense rank `dense`.
    pub original_ranks: Vec<usize>,
    /// Membership-view id this attempt runs under: the length of the
    /// view-delta log (evictions + admissions) folded so far. Strictly
    /// grows across attempts; attempt 0 runs at view 0.
    pub view_id: u64,
    /// Original ids re-admitted *into this attempt* after quarantine
    /// (empty under [`RecoveryPolicy::ShrinkOnly`] and on attempt 0).
    /// Each was synced to the current view by its sponsor — see
    /// [`ViewDelta::Admit`](crate::membership::ViewDelta::Admit).
    pub rejoined: Vec<usize>,
}

impl SurvivorView {
    /// The original id of dense rank `dense`.
    #[must_use]
    pub fn original_rank(&self, dense: usize) -> usize {
        self.original_ranks[dense]
    }

    /// Original ranks no longer participating, ascending.
    #[must_use]
    pub fn lost_ranks(&self) -> Vec<usize> {
        (0..self.original_n)
            .filter(|r| !self.original_ranks.contains(r))
            .collect()
    }
}

/// What a successful [`Cluster::run_resilient`] produces.
#[derive(Debug)]
pub struct ResilientOutput<T> {
    /// The successful attempt's output (dense survivor indexing).
    pub output: RunOutput<T>,
    /// Original ids of the ranks that completed, ascending.
    pub survivors: Vec<usize>,
    /// Attempts consumed, including the successful one.
    pub attempts: usize,
    /// Members of the final view that were evicted at least once and
    /// re-admitted after quarantine, ascending (always a subset of
    /// `survivors`; empty under [`RecoveryPolicy::ShrinkOnly`]).
    pub rejoined: Vec<usize>,
    /// The final membership-view id (total view changes folded).
    pub view_id: u64,
}

/// Rank threads a process may have alive at once across concurrent
/// cluster runs, unless `BRUCK_MAX_RANK_THREADS` overrides it (`0`
/// means unlimited). The threaded substrates cost one OS thread per
/// simulated rank, so two parallel `#[test]`s at `n = 64` would pile
/// 128 runnable threads onto a 1-core CI box; the gate serializes whole
/// runs instead.
pub const DEFAULT_MAX_RANK_THREADS: usize = 128;

/// A counting gate over rank threads: a cluster run takes `n` permits
/// before spawning and returns them when its scope joins.
///
/// Permits are granted all-or-nothing per run, so two half-admitted
/// runs can never deadlock against each other. A run wider than the
/// whole gate (`n ≥ capacity`) waits for an idle gate and then takes
/// every permit — it must run alone, but it must run.
struct RankThreadGate {
    capacity: usize,
    in_use: Mutex<usize>,
    freed: Condvar,
}

/// RAII permits from [`RankThreadGate::acquire`].
struct GatePermits<'a> {
    gate: &'a RankThreadGate,
    granted: usize,
}

impl RankThreadGate {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            in_use: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Block until `want` rank threads fit under the cap (clamped to the
    /// whole gate for oversized runs), then reserve them.
    fn acquire(&self, want: usize) -> GatePermits<'_> {
        if self.capacity == usize::MAX {
            return GatePermits {
                gate: self,
                granted: 0,
            };
        }
        let need = want.min(self.capacity);
        let mut in_use = self.in_use.lock().expect("rank-thread gate");
        while *in_use + need > self.capacity {
            in_use = self.freed.wait(in_use).expect("rank-thread gate");
        }
        *in_use += need;
        GatePermits {
            gate: self,
            granted: need,
        }
    }
}

impl Drop for GatePermits<'_> {
    fn drop(&mut self) {
        if self.granted > 0 {
            *self.gate.in_use.lock().expect("rank-thread gate") -= self.granted;
            self.gate.freed.notify_all();
        }
    }
}

/// The cluster runner (stateless; all state lives in the run).
#[derive(Debug)]
pub struct Cluster;

impl Cluster {
    /// Run `body` as an SPMD program on `config.n` threads.
    ///
    /// Every rank gets its own [`Endpoint`]; the call returns when all
    /// ranks return. If any rank fails, the *root cause* is returned:
    /// errors are ranked by causal severity (a kill beats the timeouts it
    /// provoked, which beat the cluster-wide `RanksFailed` reactions), so
    /// the caller sees what actually went wrong, not a secondary symptom.
    ///
    /// # Errors
    ///
    /// The root-cause rank error, if any.
    ///
    /// # Panics
    ///
    /// Propagates panics from the body.
    pub fn run<T, F>(config: &ClusterConfig, body: F) -> Result<RunOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        Self::run_with_transports(config, Self::channel_transports(config.n), body)
    }

    /// Run `body` over caller-provided transports (one per rank) — the
    /// engine behind both the channel cluster and
    /// [`crate::socket::SocketCluster`].
    ///
    /// # Errors
    ///
    /// The root-cause rank error, if any (see [`RunReport::root_cause`]).
    ///
    /// # Panics
    ///
    /// Panics if `transports.len() != config.n`; propagates body panics.
    pub fn run_with_transports<T, F>(
        config: &ClusterConfig,
        transports: Vec<Box<dyn crate::transport::Transport>>,
        body: F,
    ) -> Result<RunOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        Self::try_run_with_transports(config, transports, body).into_result()
    }

    /// Like [`Cluster::run`] but never collapses: every rank's individual
    /// result comes back in a [`RunReport`], alongside the cluster's
    /// failure verdict.
    ///
    /// # Panics
    ///
    /// Propagates panics from the body.
    pub fn try_run<T, F>(config: &ClusterConfig, body: F) -> RunReport<T>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        Self::try_run_with_transports(config, Self::channel_transports(config.n), body)
    }

    /// The process-global rank-thread gate (see [`RankThreadGate`]).
    fn thread_gate() -> &'static RankThreadGate {
        static GATE: OnceLock<RankThreadGate> = OnceLock::new();
        GATE.get_or_init(|| {
            let capacity = std::env::var("BRUCK_MAX_RANK_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map_or(DEFAULT_MAX_RANK_THREADS, |v| {
                    if v == 0 {
                        usize::MAX
                    } else {
                        v
                    }
                });
            RankThreadGate::with_capacity(capacity)
        })
    }

    fn channel_transports(n: usize) -> Vec<Box<dyn crate::transport::Transport>> {
        let mut senders = Vec::with_capacity(n);
        let mut mailboxes = Vec::with_capacity(n);
        for rank in 0..n {
            let (tx, mb) = Mailbox::new(rank);
            senders.push(tx);
            mailboxes.push(mb);
        }
        mailboxes
            .into_iter()
            .map(|mb| {
                Box::new(ChannelTransport::new(senders.clone(), mb))
                    as Box<dyn crate::transport::Transport>
            })
            .collect()
    }

    /// The engine: wrap transports with the configured wire sublayers
    /// (fault injection below reliability), run one thread per rank, and
    /// report every rank's outcome.
    ///
    /// # Panics
    ///
    /// Panics if `transports.len() != config.n`; propagates body panics.
    pub fn try_run_with_transports<T, F>(
        config: &ClusterConfig,
        transports: Vec<Box<dyn crate::transport::Transport>>,
        body: F,
    ) -> RunReport<T>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        let n = config.n;
        assert_eq!(transports.len(), n, "one transport per rank");
        // Bound rank threads across *concurrent* cluster runs (parallel
        // `cargo test` binaries aside, parallel #[test]s in one binary
        // each spawn a full cluster): the run blocks here until the
        // process-wide budget has room. Deadlock-free because permits
        // are taken all-or-nothing per run, never incrementally.
        let _permits = Cluster::thread_gate().acquire(n);
        let barrier = Arc::new(VBarrier::new(n));
        let trace = config.trace.then(Trace::new);
        // One pool for the whole cluster: a receiver recycles the very
        // buffer the sender's endpoint staged its payload into.
        let pool = Arc::new(BufferPool::new());
        let detector = Arc::new(FailureDetector::new(n));
        let wire_layer = config.faults.needs_wire_layer();
        // Completed-rounds clock shared by every rank's wire fault
        // layer: round-keyed partitions and cuts sever retransmissions
        // and acks too, not just the first transmission.
        let round_clock = Arc::new(RoundClock::new(n));
        // All ranks arm against the *same* expiry instant so survivors
        // observe a blown budget within one poll slice of each other.
        let shared_expiry = config
            .deadline
            .map(|budget| (Instant::now() + budget, budget));

        let mut endpoints: Vec<Endpoint> = transports
            .into_iter()
            .enumerate()
            .map(|(rank, transport)| {
                // Stack order (outermost first): reliability — fault
                // injection — wire. Faults hit every physical
                // transmission, including acks and retransmissions.
                let mut transport = transport;
                if wire_layer {
                    transport = Box::new(FaultyTransport::new(
                        transport,
                        Arc::clone(&config.faults),
                        Arc::clone(&round_clock),
                    ));
                }
                let deadline = Deadline::new();
                if let Some((expires, budget)) = shared_expiry {
                    deadline.arm_at(expires, budget);
                }
                if let Some(rel) = config.reliability {
                    transport = Box::new(
                        ReliableTransport::new(transport, rank, n, rel, Arc::clone(&detector))
                            .with_deadline(deadline.clone()),
                    );
                }
                Endpoint::new(
                    rank,
                    n,
                    config.ports,
                    Arc::clone(&config.cost),
                    transport,
                    trace.clone(),
                    Arc::clone(&barrier),
                    Arc::clone(&config.faults),
                    config.timeout,
                    Arc::clone(&pool),
                    Some(Arc::clone(&detector)),
                    config.serial_rounds,
                    deadline,
                    Arc::clone(&round_clock),
                )
            })
            .collect();

        let body = &body;
        let detector_ref = &detector;
        // Completion count for the linger phase below: under sliding-window
        // reliability, a rank that finishes first must keep answering
        // retransmitted frames (its final acks may have been lost on the
        // faulty wire) until every peer is done, or the stranded sender
        // would exhaust its retries against a peer that merely went quiet.
        let done = AtomicUsize::new(0);
        let done_ref = &done;
        let linger = config.reliability.is_some();
        let linger_fallback = config.timeout;
        let outcomes: Vec<(Result<T, NetError>, crate::metrics::RankMetrics, f64, u64)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = endpoints
                    .drain(..)
                    .map(|mut ep| {
                        scope.spawn(move || {
                            let rank = ep.rank();
                            let result = body(&mut ep);
                            // A rank that died, hit corruption, or idled
                            // into a timeout is suspect: publish it so
                            // waiters abort with the cluster-wide verdict
                            // instead of their own timeouts. Reactions
                            // (`RanksFailed`) and programming errors do
                            // NOT poison the dead set.
                            if let Err(
                                NetError::Killed { .. }
                                | NetError::Timeout { .. }
                                | NetError::Corrupt { .. }
                                | NetError::Disconnected { .. },
                            ) = &result
                            {
                                detector_ref.mark_dead(rank);
                            }
                            // End-of-run patience is derived from the
                            // link latency this very run observed: the
                            // reliability layer's adaptive RTO bounds how
                            // long a peer needs to retransmit an un-acked
                            // tail and get answered, so shutdown waits a
                            // few RTOs instead of a fixed multi-second
                            // constant (the configured timeout stays as
                            // the upper bound).
                            let flush_cap = ep
                                .linger_hint()
                                .unwrap_or(linger_fallback)
                                .min(linger_fallback);
                            // Windowed sends may still have an unacked
                            // tail when the body returns (the collective
                            // only matched the *data*, not the acks).
                            // Drain it before counting this rank as done,
                            // so shutdown cannot race an in-flight frame
                            // that a peer is still waiting to deliver.
                            if linger && !matches!(&result, Err(NetError::Killed { .. })) {
                                ep.flush(Instant::now() + flush_cap);
                            }
                            done_ref.fetch_add(1, Ordering::SeqCst);
                            // Linger: every rank whose *process* survived
                            // keeps its wire up (re-acking retransmitted
                            // frames) until all peers finish, or a peer
                            // with an in-flight send to it would exhaust
                            // its retries and falsely declare it dead.
                            // Only a killed rank goes silent — its
                            // self-mark makes peers fail fast through the
                            // detector, not through the retry cap.
                            if linger && !matches!(&result, Err(NetError::Killed { .. })) {
                                // The loop is event-bounded (every rank
                                // increments `done`, even on error); the
                                // configured timeout is only the hang
                                // backstop.
                                let deadline = Instant::now() + linger_fallback;
                                while done_ref.load(Ordering::SeqCst) < n
                                    && Instant::now() < deadline
                                {
                                    ep.service(Duration::from_millis(2));
                                }
                            }
                            let seen = ep.failures_seen();
                            let (metrics, clock) = ep.into_parts();
                            (result, metrics, clock, seen)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rank thread panicked"))
                    .collect()
            });

        let mut results = Vec::with_capacity(n);
        let mut per_rank = Vec::with_capacity(n);
        let mut virtual_times = Vec::with_capacity(n);
        let final_version = detector.version();
        for (result, metrics, clock, seen) in outcomes {
            per_rank.push(metrics);
            virtual_times.push(clock);
            // Verdict agreement: a rank whose data dependencies never
            // crossed a dead rank can race through its rounds and return
            // `Ok` before the death is even announced (an event-driven
            // wire makes this window real). The cluster-wide contract is
            // one consistent verdict, so an `Ok` from a rank that never
            // witnessed the final detector version — by aborting on it
            // or by acknowledging it for in-run recovery — is downgraded
            // to the same `RanksFailed` every blocked waiter got.
            results.push(match result {
                Ok(_) if final_version > seen => Err(NetError::RanksFailed {
                    ranks: detector.snapshot(),
                }),
                other => other,
            });
        }
        RunReport {
            outcomes: results,
            metrics: RunMetrics {
                per_rank,
                pool: pool.stats(),
                ..RunMetrics::default()
            },
            virtual_times,
            trace,
            failed: detector.snapshot(),
        }
    }

    /// Recovery-policy-driven retry: run `body`, and if ranks die
    /// (fault-injection kills or reliability-layer retry-cap verdicts),
    /// fold the verdict into a [`Membership`] view at the collective
    /// boundary and run again over the new view — up to `max_attempts`
    /// attempts in total. The body sees the current `ep.size()` and can
    /// re-plan (radix, schedule) for the membership; the
    /// [`SurvivorView`] maps dense ranks back to original ids and
    /// carries the view id.
    ///
    /// What happens between attempts is governed by
    /// [`ClusterConfig::recovery`]:
    ///
    /// * [`RecoveryPolicy::ShrinkOnly`] — evicted ranks never return
    ///   (the PR 2 behavior).
    /// * [`RecoveryPolicy::WaitForRejoin`] — the boundary waits up to
    ///   the budget for quarantined ranks whose flap-damped hold-down
    ///   window (see [`ClusterConfig::quarantine`]) expires in time and
    ///   re-admits them, so the next attempt runs over the restored
    ///   membership with fresh links. Because admission only ever
    ///   happens here — between attempts, when no traffic is in flight
    ///   and every survivor holds the same verdict — an in-flight
    ///   attempt never observes a membership change mid-round.
    /// * [`RecoveryPolicy::FailFast`] — aborts with the eviction
    ///   verdict as soon as membership falls below the quorum.
    ///
    /// Deterministic faults (kills, exact drops) are consumed by the
    /// original membership and cleared for retries; seeded probabilistic
    /// wire rates carry over ([`FaultPlan::survivor_plan`]); recurring
    /// kills ([`FaultPlan::kill_rank_recurring`]) re-fire on every
    /// attempt whose membership includes the victim — the flapping-rank
    /// generator.
    ///
    /// The final view's counters (view changes, evictions, rejoins,
    /// quarantines) are folded into the successful attempt's
    /// [`RunMetrics::membership`].
    ///
    /// # Errors
    ///
    /// Non-survivable root causes immediately; the eviction verdict when
    /// [`RecoveryPolicy::FailFast`] trips its quorum; the last root
    /// cause when attempts are exhausted or no survivors remain.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`; propagates body panics.
    pub fn run_resilient<T, F>(
        config: &ClusterConfig,
        max_attempts: usize,
        body: F,
    ) -> Result<ResilientOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint, &SurvivorView) -> Result<T, NetError> + Sync,
    {
        Self::run_resilient_with(
            config,
            max_attempts,
            &mut |n, _attempt| Ok(Self::channel_transports(n)),
            body,
        )
    }

    /// [`Cluster::run_resilient`] over caller-provided transports: the
    /// factory is called once per attempt with the attempt's member
    /// count and index, so a restarted rank can re-establish its links
    /// on fresh wires (e.g. a new socket incarnation — see
    /// [`SocketCluster::run_resilient`](crate::socket::SocketCluster::run_resilient)).
    ///
    /// # Errors
    ///
    /// Factory errors propagate verbatim; otherwise see
    /// [`Cluster::run_resilient`].
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`; propagates body panics.
    pub fn run_resilient_with<T, F>(
        config: &ClusterConfig,
        max_attempts: usize,
        transports: &mut dyn FnMut(
            usize,
            usize,
        )
            -> Result<Vec<Box<dyn crate::transport::Transport>>, NetError>,
        body: F,
    ) -> Result<ResilientOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint, &SurvivorView) -> Result<T, NetError> + Sync,
    {
        assert!(max_attempts >= 1, "need at least one attempt");
        let membership = Membership::new(config.n).with_base_quarantine(config.quarantine);
        let mut cfg = config.clone();
        let mut rejoined_now: Vec<usize> = Vec::new();
        for attempt in 0..max_attempts {
            let members = membership.members();
            cfg.n = members.len();
            // Faults are re-derived from the *original* plan each
            // attempt: attempt 0 keeps its deterministic faults, later
            // attempts clear the consumed ones but keep seeded wire
            // rates — and recurring kills are re-bound to the attempt's
            // dense numbering so they chase their victim across views.
            let base = if attempt == 0 {
                (*config.faults).clone()
            } else {
                config.faults.survivor_plan()
            };
            cfg.faults = Arc::new(base.bind_recurring(&members));
            let view = SurvivorView {
                attempt,
                original_n: config.n,
                original_ranks: members.clone(),
                view_id: membership.view_id(),
                rejoined: std::mem::take(&mut rejoined_now),
            };
            let wires = transports(members.len(), attempt)?;
            let report = Self::try_run_with_transports(&cfg, wires, |ep| body(ep, &view));
            let Some((_, cause)) = report.root_cause() else {
                let mut output = report.into_result().expect("no errors per root_cause");
                output.metrics.membership = membership.stats();
                return Ok(ResilientOutput {
                    output,
                    survivors: members,
                    attempts: attempt + 1,
                    rejoined: membership.rejoined_ranks(),
                    view_id: membership.view_id(),
                });
            };
            let cause = cause.clone();
            if !cause.is_rank_failure() || attempt + 1 == max_attempts {
                return Err(cause);
            }
            if report.failed.is_empty() {
                return Err(cause);
            }
            // Collective boundary: the attempt is over, no traffic is in
            // flight, and `report.failed` is the verdict every survivor
            // agreed on — fold it into the view (dense ids map back
            // through this attempt's membership).
            for &dense in &report.failed {
                membership.evict(members[dense]);
            }
            if membership.members().is_empty() {
                return Err(cause);
            }
            match config.recovery {
                RecoveryPolicy::ShrinkOnly => {}
                RecoveryPolicy::FailFast { min_quorum } => {
                    if membership.members().len() < min_quorum {
                        return Err(NetError::RanksFailed {
                            ranks: membership.evicted_ranks(),
                        });
                    }
                }
                RecoveryPolicy::WaitForRejoin { budget } => {
                    rejoined_now = membership.wait_for_rejoin(budget);
                }
            }
        }
        unreachable!("loop returns on success, exhaustion, or hard error")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{RecvSpec, SendSpec};
    use bruck_model::complexity::Complexity;

    #[test]
    fn rank_thread_gate_grants_all_or_nothing() {
        let gate = RankThreadGate::with_capacity(8);
        {
            let a = gate.acquire(5);
            assert_eq!(a.granted, 5);
            let b = gate.acquire(3);
            assert_eq!(b.granted, 3);
        }
        let c = gate.acquire(64);
        assert_eq!(c.granted, 8, "oversized run takes the whole gate");
        drop(c);
        assert_eq!(*gate.in_use.lock().unwrap(), 0, "permits all returned");
    }

    #[test]
    fn rank_thread_gate_blocks_until_permits_return() {
        let gate = RankThreadGate::with_capacity(2);
        let gate_ref = &gate;
        std::thread::scope(|s| {
            let held = gate_ref.acquire(2);
            let (tx, rx) = std::sync::mpsc::channel();
            s.spawn(move || {
                let _p = gate_ref.acquire(1);
                tx.send(()).unwrap();
            });
            assert!(
                rx.recv_timeout(Duration::from_millis(50)).is_err(),
                "acquire must block while the gate is full"
            );
            drop(held);
            rx.recv_timeout(Duration::from_secs(5))
                .expect("acquire unblocks once permits return");
        });
    }

    #[test]
    fn single_rank_trivial() {
        let out = Cluster::run(&ClusterConfig::new(1), |ep| Ok(ep.rank())).unwrap();
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::ZERO));
    }

    #[test]
    fn ring_rotation() {
        let cfg = ClusterConfig::new(5);
        let out = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            let got = ep.send_and_recv(right, &[ep.rank() as u8], left, 0)?;
            Ok(got[0])
        })
        .unwrap();
        assert_eq!(out.results, vec![4, 0, 1, 2, 3]);
        // One round, max message 1 byte.
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::new(1, 1)));
    }

    #[test]
    fn virtual_time_linear_model_synchronous() {
        // 3 rounds of 100-byte messages on the SP-1 linear model:
        // T = 3·(29µs + 100·0.12µs).
        let cfg = ClusterConfig::new(4);
        let out = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let payload = vec![0u8; 100];
            for _ in 0..3 {
                let right = (ep.rank() + 1) % n;
                let left = (ep.rank() + n - 1) % n;
                ep.send_and_recv(right, &payload, left, 0)?;
            }
            Ok(ep.virtual_time())
        })
        .unwrap();
        let expected = 3.0 * (29e-6 + 100.0 * 0.12e-6);
        for &t in &out.results {
            assert!((t - expected).abs() < 1e-12, "t = {t}, expected {expected}");
        }
        assert_eq!(
            out.metrics.global_complexity(),
            Some(Complexity::new(3, 300))
        );
    }

    #[test]
    fn multiport_round() {
        // k = 2: every rank sends to rank±1 and receives from rank±1 in a
        // single round.
        let cfg = ClusterConfig::new(5).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let r = ep.rank();
            let right = (r + 1) % n;
            let left = (r + n - 1) % n;
            let payload = [r as u8];
            let msgs = ep.round(
                &[
                    SendSpec {
                        to: right,
                        tag: 1,
                        payload: &payload,
                    },
                    SendSpec {
                        to: left,
                        tag: 2,
                        payload: &payload,
                    },
                ],
                &[
                    RecvSpec { from: left, tag: 1 },
                    RecvSpec {
                        from: right,
                        tag: 2,
                    },
                ],
            )?;
            Ok((msgs[0].payload[0], msgs[1].payload[0]))
        })
        .unwrap();
        for (r, &(from_left, from_right)) in out.results.iter().enumerate() {
            assert_eq!(from_left as usize, (r + 4) % 5);
            assert_eq!(from_right as usize, (r + 1) % 5);
        }
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::new(1, 1)));
    }

    #[test]
    fn port_limit_enforced() {
        let cfg = ClusterConfig::new(4).with_ports(1);
        let err = Cluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                let p = [0u8];
                ep.round(
                    &[
                        SendSpec {
                            to: 1,
                            tag: 0,
                            payload: &p,
                        },
                        SendSpec {
                            to: 2,
                            tag: 0,
                            payload: &p,
                        },
                    ],
                    &[],
                )?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            NetError::PortLimit {
                rank: 0,
                requested: 2,
                ports: 1,
                ..
            }
        ));
    }

    #[test]
    fn self_send_rejected() {
        let cfg = ClusterConfig::new(2);
        let err = Cluster::run(&cfg, |ep| {
            let p = [0u8];
            let rank = ep.rank();
            ep.round(
                &[SendSpec {
                    to: rank,
                    tag: 0,
                    payload: &p,
                }],
                &[],
            )?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, NetError::BadPeer { .. }));
    }

    #[test]
    fn duplicate_destination_rejected() {
        let cfg = ClusterConfig::new(3).with_ports(2);
        let err = Cluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                let p = [0u8];
                ep.round(
                    &[
                        SendSpec {
                            to: 1,
                            tag: 0,
                            payload: &p,
                        },
                        SendSpec {
                            to: 1,
                            tag: 1,
                            payload: &p,
                        },
                    ],
                    &[],
                )?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, NetError::DuplicatePeer { rank: 0, peer: 1 }));
    }

    #[test]
    fn timeout_surfaces_as_error() {
        let cfg = ClusterConfig::new(2).with_timeout(Duration::from_millis(50));
        let err = Cluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                // Rank 1 never sends.
                ep.round(&[], &[RecvSpec { from: 1, tag: 9 }])?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout {
                rank: 0,
                from: 1,
                tag: 9,
                ..
            }
        ));
    }

    #[test]
    fn killed_rank_propagates() {
        let cfg = ClusterConfig::new(3)
            .with_timeout(Duration::from_millis(100))
            .with_faults(FaultPlan::new().kill_rank_after(1, 0));
        let err = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            ep.send_and_recv(right, &[1], left, 0)?;
            Ok(())
        })
        .unwrap_err();
        // Rank 0 times out waiting for rank 1's message *or* rank 1
        // reports Killed, whichever rank order surfaces first: rank order
        // makes rank 0's timeout the first error... but rank 0 may succeed
        // if message ordering lets it; accept either shape.
        assert!(
            matches!(err, NetError::Killed { rank: 1, .. })
                || matches!(err, NetError::Timeout { .. }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn dropped_message_times_out_receiver() {
        let cfg = ClusterConfig::new(2)
            .with_timeout(Duration::from_millis(50))
            .with_faults(FaultPlan::new().drop_message(0, 1, 0));
        let err = Cluster::run(&cfg, |ep| {
            let peer = 1 - ep.rank();
            ep.send_and_recv(peer, &[7], peer, 0)?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout {
                rank: 1,
                from: 0,
                ..
            }
        ));
    }

    #[test]
    fn trace_records_all_sends() {
        let cfg = ClusterConfig::new(3).with_trace();
        let out = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            ep.send_and_recv(right, &[0u8; 10], left, 0)?;
            Ok(())
        })
        .unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(trace.len(), 3);
        let m = trace.traffic_matrix(3);
        assert_eq!(m[0][1], 10);
        assert_eq!(m[1][2], 10);
        assert_eq!(m[2][0], 10);
    }

    #[test]
    fn barrier_syncs_clocks() {
        let cfg = ClusterConfig::new(3);
        let out = Cluster::run(&cfg, |ep| {
            // Rank r computes r milliseconds of virtual work, then syncs.
            ep.advance_compute(ep.rank() as f64 * 1e-3);
            ep.barrier();
            Ok(ep.virtual_time())
        })
        .unwrap();
        for &t in &out.results {
            assert!((t - 2e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn idle_round_keeps_alignment() {
        let cfg = ClusterConfig::new(2);
        let out = Cluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                ep.round(
                    &[SendSpec {
                        to: 1,
                        tag: 0,
                        payload: &[1, 2],
                    }],
                    &[],
                )?;
            } else {
                ep.round(&[], &[RecvSpec { from: 0, tag: 0 }])?;
            }
            ep.idle_round()?;
            Ok(())
        })
        .unwrap();
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::new(2, 2)));
    }
}

//! The SPMD cluster runner.

use std::sync::Arc;
use std::time::Duration;

use bruck_model::cost::{CostModel, LinearModel};

use crate::endpoint::Endpoint;
use crate::error::NetError;
use crate::fault::FaultPlan;
use crate::mailbox::Mailbox;
use crate::metrics::RunMetrics;
use crate::pool::BufferPool;
use crate::trace::Trace;
use crate::transport::ChannelTransport;
use crate::vbarrier::VBarrier;

/// Configuration for one cluster run.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of simulated processors.
    pub n: usize,
    /// Ports per processor (`k`).
    pub ports: usize,
    /// Virtual-time cost model.
    pub cost: Arc<dyn CostModel>,
    /// Record a [`Trace`] of every send.
    pub trace: bool,
    /// Receive timeout (deadlock/fault detector).
    pub timeout: Duration,
    /// Injected faults.
    pub faults: Arc<FaultPlan>,
}

impl ClusterConfig {
    /// `n` processors, 1 port, SP-1 linear cost model, 10 s timeout,
    /// no tracing, no faults.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "cluster needs at least one processor");
        Self {
            n,
            ports: 1,
            cost: Arc::new(LinearModel::sp1()),
            trace: false,
            timeout: Duration::from_secs(10),
            faults: Arc::new(FaultPlan::new()),
        }
    }

    /// Set the port count `k`.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    #[must_use]
    pub fn with_ports(mut self, ports: usize) -> Self {
        assert!(ports >= 1, "need at least one port");
        self.ports = ports;
        self
    }

    /// Set the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = cost;
        self
    }

    /// Enable trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Set the receive timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Install a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Arc::new(faults);
        self
    }
}

impl core::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("n", &self.n)
            .field("ports", &self.ports)
            .field("cost", &self.cost.name())
            .field("trace", &self.trace)
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Folded communication metrics.
    pub metrics: RunMetrics,
    /// Per-rank virtual completion times (after a final clock sync, all
    /// equal to the max; kept per-rank for skew analysis before sync).
    pub virtual_times: Vec<f64>,
    /// The trace, if tracing was enabled.
    pub trace: Option<Trace>,
}

impl<T> RunOutput<T> {
    /// The virtual makespan: the latest rank completion time.
    #[must_use]
    pub fn virtual_makespan(&self) -> f64 {
        self.virtual_times.iter().copied().fold(0.0, f64::max)
    }
}

/// The cluster runner (stateless; all state lives in the run).
#[derive(Debug)]
pub struct Cluster;

impl Cluster {
    /// Run `body` as an SPMD program on `config.n` threads.
    ///
    /// Every rank gets its own [`Endpoint`]; the call returns when all
    /// ranks return. If any rank fails, the first error (by rank order) is
    /// returned — other ranks may consequently fail with timeouts, which
    /// are discarded.
    ///
    /// # Errors
    ///
    /// The first rank error, if any.
    ///
    /// # Panics
    ///
    /// Propagates panics from the body.
    pub fn run<T, F>(config: &ClusterConfig, body: F) -> Result<RunOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        let n = config.n;
        let mut senders = Vec::with_capacity(n);
        let mut mailboxes = Vec::with_capacity(n);
        for rank in 0..n {
            let (tx, mb) = Mailbox::new(rank);
            senders.push(tx);
            mailboxes.push(mb);
        }
        let transports: Vec<Box<dyn crate::transport::Transport>> = mailboxes
            .into_iter()
            .map(|mb| {
                Box::new(ChannelTransport::new(senders.clone(), mb))
                    as Box<dyn crate::transport::Transport>
            })
            .collect();
        // The original `senders` are dropped here so that a rank's channel
        // disconnects once all other endpoints are gone.
        drop(senders);
        Self::run_with_transports(config, transports, body)
    }

    /// Run `body` over caller-provided transports (one per rank) — the
    /// engine behind both the channel cluster and
    /// [`crate::socket::SocketCluster`].
    ///
    /// # Errors
    ///
    /// The first rank error, if any.
    ///
    /// # Panics
    ///
    /// Panics if `transports.len() != config.n`; propagates body panics.
    pub fn run_with_transports<T, F>(
        config: &ClusterConfig,
        transports: Vec<Box<dyn crate::transport::Transport>>,
        body: F,
    ) -> Result<RunOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        let n = config.n;
        assert_eq!(transports.len(), n, "one transport per rank");
        let barrier = Arc::new(VBarrier::new(n));
        let trace = config.trace.then(Trace::new);
        // One pool for the whole cluster: a receiver recycles the very
        // buffer the sender's endpoint staged its payload into.
        let pool = Arc::new(BufferPool::new());

        let mut endpoints: Vec<Endpoint> = transports
            .into_iter()
            .enumerate()
            .map(|(rank, transport)| {
                Endpoint::new(
                    rank,
                    n,
                    config.ports,
                    Arc::clone(&config.cost),
                    transport,
                    trace.clone(),
                    Arc::clone(&barrier),
                    Arc::clone(&config.faults),
                    config.timeout,
                    Arc::clone(&pool),
                )
            })
            .collect();

        let body = &body;
        let outcomes: Vec<(Result<T, NetError>, crate::metrics::RankMetrics, f64)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = endpoints
                    .drain(..)
                    .map(|mut ep| {
                        scope.spawn(move || {
                            let result = body(&mut ep);
                            let (metrics, clock) = ep.into_parts();
                            (result, metrics, clock)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rank thread panicked"))
                    .collect()
            });

        let mut results = Vec::with_capacity(n);
        let mut per_rank = Vec::with_capacity(n);
        let mut virtual_times = Vec::with_capacity(n);
        let mut first_err: Option<NetError> = None;
        for (result, metrics, clock) in outcomes {
            per_rank.push(metrics);
            virtual_times.push(clock);
            match result {
                Ok(v) => results.push(v),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(RunOutput {
            results,
            metrics: RunMetrics {
                per_rank,
                pool: pool.stats(),
            },
            virtual_times,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{RecvSpec, SendSpec};
    use bruck_model::complexity::Complexity;

    #[test]
    fn single_rank_trivial() {
        let out = Cluster::run(&ClusterConfig::new(1), |ep| Ok(ep.rank())).unwrap();
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::ZERO));
    }

    #[test]
    fn ring_rotation() {
        let cfg = ClusterConfig::new(5);
        let out = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            let got = ep.send_and_recv(right, &[ep.rank() as u8], left, 0)?;
            Ok(got[0])
        })
        .unwrap();
        assert_eq!(out.results, vec![4, 0, 1, 2, 3]);
        // One round, max message 1 byte.
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::new(1, 1)));
    }

    #[test]
    fn virtual_time_linear_model_synchronous() {
        // 3 rounds of 100-byte messages on the SP-1 linear model:
        // T = 3·(29µs + 100·0.12µs).
        let cfg = ClusterConfig::new(4);
        let out = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let payload = vec![0u8; 100];
            for _ in 0..3 {
                let right = (ep.rank() + 1) % n;
                let left = (ep.rank() + n - 1) % n;
                ep.send_and_recv(right, &payload, left, 0)?;
            }
            Ok(ep.virtual_time())
        })
        .unwrap();
        let expected = 3.0 * (29e-6 + 100.0 * 0.12e-6);
        for &t in &out.results {
            assert!((t - expected).abs() < 1e-12, "t = {t}, expected {expected}");
        }
        assert_eq!(
            out.metrics.global_complexity(),
            Some(Complexity::new(3, 300))
        );
    }

    #[test]
    fn multiport_round() {
        // k = 2: every rank sends to rank±1 and receives from rank±1 in a
        // single round.
        let cfg = ClusterConfig::new(5).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let r = ep.rank();
            let right = (r + 1) % n;
            let left = (r + n - 1) % n;
            let payload = [r as u8];
            let msgs = ep.round(
                &[
                    SendSpec {
                        to: right,
                        tag: 1,
                        payload: &payload,
                    },
                    SendSpec {
                        to: left,
                        tag: 2,
                        payload: &payload,
                    },
                ],
                &[
                    RecvSpec { from: left, tag: 1 },
                    RecvSpec {
                        from: right,
                        tag: 2,
                    },
                ],
            )?;
            Ok((msgs[0].payload[0], msgs[1].payload[0]))
        })
        .unwrap();
        for (r, &(from_left, from_right)) in out.results.iter().enumerate() {
            assert_eq!(from_left as usize, (r + 4) % 5);
            assert_eq!(from_right as usize, (r + 1) % 5);
        }
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::new(1, 1)));
    }

    #[test]
    fn port_limit_enforced() {
        let cfg = ClusterConfig::new(4).with_ports(1);
        let err = Cluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                let p = [0u8];
                ep.round(
                    &[
                        SendSpec {
                            to: 1,
                            tag: 0,
                            payload: &p,
                        },
                        SendSpec {
                            to: 2,
                            tag: 0,
                            payload: &p,
                        },
                    ],
                    &[],
                )?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            NetError::PortLimit {
                rank: 0,
                requested: 2,
                ports: 1,
                ..
            }
        ));
    }

    #[test]
    fn self_send_rejected() {
        let cfg = ClusterConfig::new(2);
        let err = Cluster::run(&cfg, |ep| {
            let p = [0u8];
            let rank = ep.rank();
            ep.round(
                &[SendSpec {
                    to: rank,
                    tag: 0,
                    payload: &p,
                }],
                &[],
            )?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, NetError::BadPeer { .. }));
    }

    #[test]
    fn duplicate_destination_rejected() {
        let cfg = ClusterConfig::new(3).with_ports(2);
        let err = Cluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                let p = [0u8];
                ep.round(
                    &[
                        SendSpec {
                            to: 1,
                            tag: 0,
                            payload: &p,
                        },
                        SendSpec {
                            to: 1,
                            tag: 1,
                            payload: &p,
                        },
                    ],
                    &[],
                )?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, NetError::DuplicatePeer { rank: 0, peer: 1 }));
    }

    #[test]
    fn timeout_surfaces_as_error() {
        let cfg = ClusterConfig::new(2).with_timeout(Duration::from_millis(50));
        let err = Cluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                // Rank 1 never sends.
                ep.round(&[], &[RecvSpec { from: 1, tag: 9 }])?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout {
                rank: 0,
                from: 1,
                tag: 9,
                ..
            }
        ));
    }

    #[test]
    fn killed_rank_propagates() {
        let cfg = ClusterConfig::new(3)
            .with_timeout(Duration::from_millis(100))
            .with_faults(FaultPlan::new().kill_rank_after(1, 0));
        let err = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            ep.send_and_recv(right, &[1], left, 0)?;
            Ok(())
        })
        .unwrap_err();
        // Rank 0 times out waiting for rank 1's message *or* rank 1
        // reports Killed, whichever rank order surfaces first: rank order
        // makes rank 0's timeout the first error... but rank 0 may succeed
        // if message ordering lets it; accept either shape.
        assert!(
            matches!(err, NetError::Killed { rank: 1, .. })
                || matches!(err, NetError::Timeout { .. }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn dropped_message_times_out_receiver() {
        let cfg = ClusterConfig::new(2)
            .with_timeout(Duration::from_millis(50))
            .with_faults(FaultPlan::new().drop_message(0, 1, 0));
        let err = Cluster::run(&cfg, |ep| {
            let peer = 1 - ep.rank();
            ep.send_and_recv(peer, &[7], peer, 0)?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout {
                rank: 1,
                from: 0,
                ..
            }
        ));
    }

    #[test]
    fn trace_records_all_sends() {
        let cfg = ClusterConfig::new(3).with_trace();
        let out = Cluster::run(&cfg, |ep| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            ep.send_and_recv(right, &[0u8; 10], left, 0)?;
            Ok(())
        })
        .unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(trace.len(), 3);
        let m = trace.traffic_matrix(3);
        assert_eq!(m[0][1], 10);
        assert_eq!(m[1][2], 10);
        assert_eq!(m[2][0], 10);
    }

    #[test]
    fn barrier_syncs_clocks() {
        let cfg = ClusterConfig::new(3);
        let out = Cluster::run(&cfg, |ep| {
            // Rank r computes r milliseconds of virtual work, then syncs.
            ep.advance_compute(ep.rank() as f64 * 1e-3);
            ep.barrier();
            Ok(ep.virtual_time())
        })
        .unwrap();
        for &t in &out.results {
            assert!((t - 2e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn idle_round_keeps_alignment() {
        let cfg = ClusterConfig::new(2);
        let out = Cluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                ep.round(
                    &[SendSpec {
                        to: 1,
                        tag: 0,
                        payload: &[1, 2],
                    }],
                    &[],
                )?;
            } else {
                ep.round(&[], &[RecvSpec { from: 0, tag: 0 }])?;
            }
            ep.idle_round()?;
            Ok(())
        })
        .unwrap();
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::new(2, 2)));
    }
}

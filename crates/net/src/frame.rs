//! Wire framing and fragment reassembly shared by the real-I/O
//! transports.
//!
//! The Unix-datagram transport ([`crate::socket`]) ships one frame per
//! datagram; the TCP stream transport ([`crate::tcp`]) wraps the same
//! frame in a length + destination prefix so many ranks can multiplex
//! one node-pair stream. Both fragment payloads at [`FRAG_PAYLOAD`] and
//! reassemble with the same [`Assembler`], so a message is bit-identical
//! whichever wire carried it.

use std::collections::{HashMap, VecDeque};

use crate::error::NetError;
use crate::message::{Message, Tag};

/// Max payload bytes per wire fragment. Sized so a 64 KiB block — the
/// common collective block size — travels as a single fragment (one
/// syscall, no reassembly copy), while still fitting under the kernel's
/// default datagram `SO_SNDBUF` (208 KiB) with header room to spare.
pub const FRAG_PAYLOAD: usize = 64 * 1024;

// src, tag, msg id, frag idx, frag count, arrival, seq, ack,
// checksum flag + value
pub(crate) const HEADER: usize = 4 + 8 + 8 + 4 + 4 + 8 + 8 + 8 + 1 + 4;

/// Encode one fragment into `buf` (cleared first). Writing into a
/// caller-owned buffer lets a transport reuse a single allocation for
/// every outbound frame — the practical stand-in for vectored writes.
#[allow(clippy::too_many_arguments)] // mirrors the frame header, field for field
pub(crate) fn encode_frame_into(
    buf: &mut Vec<u8>,
    src: usize,
    tag: Tag,
    msg_id: u64,
    frag_idx: u32,
    frag_count: u32,
    arrival: f64,
    seq: u64,
    ack: u64,
    checksum: Option<u32>,
    chunk: &[u8],
) {
    buf.clear();
    buf.reserve(HEADER + chunk.len());
    buf.extend_from_slice(&(src as u32).to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(&msg_id.to_le_bytes());
    buf.extend_from_slice(&frag_idx.to_le_bytes());
    buf.extend_from_slice(&frag_count.to_le_bytes());
    buf.extend_from_slice(&arrival.to_bits().to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&ack.to_le_bytes());
    buf.push(u8::from(checksum.is_some()));
    buf.extend_from_slice(&checksum.unwrap_or(0).to_le_bytes());
    buf.extend_from_slice(chunk);
}

pub(crate) struct Frame {
    pub(crate) src: usize,
    pub(crate) tag: Tag,
    pub(crate) msg_id: u64,
    pub(crate) frag_idx: u32,
    pub(crate) frag_count: u32,
    pub(crate) arrival: f64,
    pub(crate) seq: u64,
    pub(crate) ack: u64,
    pub(crate) checksum: Option<u32>,
    pub(crate) chunk: Vec<u8>,
}

pub(crate) fn decode_frame(buf: &[u8]) -> Result<Frame, NetError> {
    if buf.len() < HEADER {
        return Err(NetError::App(format!(
            "runt datagram of {} bytes",
            buf.len()
        )));
    }
    let get = |at: usize, len: usize| &buf[at..at + len];
    Ok(Frame {
        src: u32::from_le_bytes(get(0, 4).try_into().expect("4 bytes")) as usize,
        tag: Tag::from_le_bytes(get(4, 8).try_into().expect("8 bytes")),
        msg_id: u64::from_le_bytes(get(12, 8).try_into().expect("8 bytes")),
        frag_idx: u32::from_le_bytes(get(20, 4).try_into().expect("4 bytes")),
        frag_count: u32::from_le_bytes(get(24, 4).try_into().expect("4 bytes")),
        arrival: f64::from_bits(u64::from_le_bytes(get(28, 8).try_into().expect("8 bytes"))),
        seq: u64::from_le_bytes(get(36, 8).try_into().expect("8 bytes")),
        ack: u64::from_le_bytes(get(44, 8).try_into().expect("8 bytes")),
        checksum: (buf[52] != 0)
            .then(|| u32::from_le_bytes(get(53, 4).try_into().expect("4 bytes"))),
        chunk: buf[HEADER..].to_vec(),
    })
}

struct Reassembly {
    tag: Tag,
    arrival: f64,
    seq: u64,
    ack: u64,
    checksum: Option<u32>,
    frag_count: u32,
    received: u32,
    chunks: Vec<Option<Vec<u8>>>,
}

/// Fragment reassembly for one receiving rank, shared by the datagram
/// and TCP stream transports: frames keyed by `(src, msg_id)` accumulate
/// until complete, then surface as whole [`Message`]s in `pending`.
pub(crate) struct Assembler {
    rank: usize,
    pub(crate) pending: VecDeque<Message>,
    partial: HashMap<(usize, u64), Reassembly>,
}

impl Assembler {
    pub(crate) fn new(rank: usize) -> Self {
        Self {
            rank,
            pending: VecDeque::new(),
            partial: HashMap::new(),
        }
    }

    /// Fold one decoded frame in; complete messages land in `pending`.
    pub(crate) fn accept(&mut self, frame: Frame) {
        if frame.frag_count == 1 {
            self.pending.push_back(Message {
                src: frame.src,
                dst: self.rank,
                tag: frame.tag,
                payload: frame.chunk,
                arrival: frame.arrival,
                seq: frame.seq,
                ack: frame.ack,
                checksum: frame.checksum,
            });
            return;
        }
        let key = (frame.src, frame.msg_id);
        let entry = self.partial.entry(key).or_insert_with(|| Reassembly {
            tag: frame.tag,
            arrival: frame.arrival,
            seq: frame.seq,
            ack: frame.ack,
            checksum: frame.checksum,
            frag_count: frame.frag_count,
            received: 0,
            chunks: vec![None; frame.frag_count as usize],
        });
        let idx = frame.frag_idx as usize;
        if idx < entry.chunks.len() && entry.chunks[idx].is_none() {
            entry.chunks[idx] = Some(frame.chunk);
            entry.received += 1;
        }
        if entry.received == entry.frag_count {
            let done = self.partial.remove(&key).expect("entry just updated");
            let payload: Vec<u8> = done
                .chunks
                .into_iter()
                .flat_map(|c| c.expect("all fragments present"))
                .collect();
            self.pending.push_back(Message {
                src: frame.src,
                dst: self.rank,
                tag: done.tag,
                payload,
                arrival: done.arrival,
                seq: done.seq,
                ack: done.ack,
                checksum: done.checksum,
            });
        }
    }

    /// Pull the first pending message matching `(from, tag)`.
    pub(crate) fn take_match(&mut self, from: usize, tag: Tag) -> Option<Message> {
        let pos = self
            .pending
            .iter()
            .position(|m| m.src == from && m.tag == tag)?;
        self.pending.remove(pos)
    }

    /// Discard everything buffered (complete and partial). Returns how
    /// many messages were thrown away.
    pub(crate) fn clear(&mut self) -> usize {
        let n = self.pending.len() + self.partial.len();
        self.pending.clear();
        self.partial.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut f = Vec::new();
        encode_frame_into(
            &mut f,
            7,
            42,
            9,
            2,
            5,
            1.25,
            11,
            6,
            Some(0xDEAD),
            &[1, 2, 3],
        );
        let d = decode_frame(&f).unwrap();
        assert_eq!(
            (d.src, d.tag, d.msg_id, d.frag_idx, d.frag_count, d.arrival),
            (7, 42, 9, 2, 5, 1.25)
        );
        assert_eq!((d.seq, d.ack, d.checksum), (11, 6, Some(0xDEAD)));
        assert_eq!(d.chunk, vec![1, 2, 3]);
    }

    #[test]
    fn frame_round_trip_no_checksum() {
        let mut f = Vec::new();
        encode_frame_into(&mut f, 1, 2, 3, 0, 1, 0.0, 0, 0, None, &[]);
        let d = decode_frame(&f).unwrap();
        assert_eq!((d.seq, d.ack, d.checksum), (0, 0, None));
        assert!(d.chunk.is_empty());
    }

    #[test]
    fn frame_buffer_is_reused_across_encodes() {
        let mut f = Vec::new();
        encode_frame_into(&mut f, 1, 2, 3, 0, 1, 0.0, 0, 0, None, &[9; 64]);
        let first = f.clone();
        encode_frame_into(&mut f, 1, 2, 3, 0, 1, 0.0, 0, 0, None, &[7; 8]);
        assert_ne!(f, first);
        encode_frame_into(&mut f, 1, 2, 3, 0, 1, 0.0, 0, 0, None, &[9; 64]);
        assert_eq!(f, first, "re-encoding reproduces the identical frame");
    }

    #[test]
    fn runt_frame_rejected() {
        assert!(decode_frame(&[0u8; 10]).is_err());
    }

    #[test]
    fn assembler_reassembles_out_of_order_fragments() {
        let mut asm = Assembler::new(3);
        let frag = |idx: u32, chunk: &[u8]| Frame {
            src: 1,
            tag: 7,
            msg_id: 5,
            frag_idx: idx,
            frag_count: 3,
            arrival: 0.0,
            seq: 9,
            ack: 0,
            checksum: None,
            chunk: chunk.to_vec(),
        };
        asm.accept(frag(2, &[5, 6]));
        asm.accept(frag(0, &[1, 2]));
        assert!(asm.pending.is_empty());
        asm.accept(frag(1, &[3, 4]));
        let m = asm.take_match(1, 7).expect("complete message");
        assert_eq!(m.payload, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!((m.src, m.dst, m.seq), (1, 3, 9));
    }

    #[test]
    fn assembler_ignores_duplicate_fragments() {
        let mut asm = Assembler::new(0);
        let frag = |idx: u32| Frame {
            src: 2,
            tag: 1,
            msg_id: 8,
            frag_idx: idx,
            frag_count: 2,
            arrival: 0.0,
            seq: 0,
            ack: 0,
            checksum: None,
            chunk: vec![idx as u8],
        };
        asm.accept(frag(0));
        asm.accept(frag(0));
        assert!(asm.pending.is_empty(), "duplicate must not complete");
        asm.accept(frag(1));
        assert_eq!(asm.pending.len(), 1);
        assert_eq!(asm.clear(), 1);
    }
}

//! An in-process **multiport fully connected message-passing system**.
//!
//! The paper's machine model (§1.2) is a set of `n` processors, each pair
//! equally distant, where in every communication round a processor may send
//! `k` distinct messages to `k` processors and simultaneously receive `k`
//! messages from `k` other processors. The paper ran on an IBM SP-1; this
//! crate substitutes an in-process cluster: one OS thread per simulated
//! processor, fully connected by channels.
//!
//! Two clocks run at once:
//!
//! * **wall clock** — real time; Criterion benches measure it;
//! * **virtual clock** — per-rank simulated time advanced by a pluggable
//!   [`bruck_model::cost::CostModel`]; message timestamps propagate
//!   causally (`arrival = departure + latency`, receivers take `max`), so
//!   a synchronous schedule reproduces the paper's `T = C1·β + C2·τ`
//!   exactly under the linear model.
//!
//! The substrate *enforces* the model: a round may not use more than `k`
//! ports in either direction, destinations must be distinct, and
//! self-sends are rejected. Algorithms that violate the k-port model fail
//! loudly in tests instead of silently cheating.
//!
//! # The fault model and the self-healing stack
//!
//! The paper argues for the fully connected model partly on fault
//! tolerance: algorithms "can operate in the presence of faults
//! (assuming connectivity is maintained)". This crate makes that
//! concrete with three layers (all off by default, zero cost when off):
//!
//! * **Fault injection** ([`fault`]) — deterministic plans (kill a rank
//!   after a round, drop one exact message) applied at the round layer,
//!   plus seeded *probabilistic wire faults* (per-link loss,
//!   duplication, corruption, virtual delay) applied by
//!   [`fault::FaultyTransport`] to every physical transmission. The RNG
//!   is a keyed splitmix64 hash — deterministic under a fixed seed, no
//!   ambient entropy. When wire faults are on, payloads carry FNV-1a
//!   checksums so corruption surfaces as [`NetError::Corrupt`] instead
//!   of silently bad bytes.
//! * **Reliability** ([`reliable`]) — a sliding-window ack/retransmit
//!   sublayer ([`reliable::ReliableTransport`]) restoring exactly-once,
//!   in-order, uncorrupted delivery over a lossy wire: per-link sequence
//!   numbers with a configurable window of unacked frames in flight
//!   ([`bruck_model::tuning::WireTuning`], default 8), cumulative +
//!   selective acks, ack piggybacking on reverse-path data,
//!   exponential-backoff retransmission of only the unacked suffix, and
//!   duplicate suppression. Past the retry cap a peer is declared dead
//!   in the cluster-shared [`failure::FailureDetector`].
//! * **Failure agreement + shrink-and-retry** ([`failure`],
//!   [`cluster`]) — the detector is a monotone dead set every endpoint
//!   polls while waiting, so one rank's death interrupts every waiter
//!   with the same [`NetError::RanksFailed`] verdict (no
//!   `Timeout`-vs-`Killed` mix, no hangs). [`Cluster::run`] reports the
//!   *root cause* across ranks; [`Cluster::run_resilient`] rebuilds a
//!   dense survivor cluster and re-runs the body, which re-plans its
//!   schedule for the shrunken size — the paper's "arbitrary and dynamic
//!   subsets" put to work as graceful degradation.
//!
//! # The pooled data plane
//!
//! Every message payload and every executor scratch buffer comes from one
//! cluster-shared, size-classed [`BufferPool`] (see [`pool`]). Senders
//! stage borrowed payloads into pooled buffers; the receiver recycles the
//! very buffer the sender staged, so after a warmup pass the steady state
//! performs **zero fresh heap allocations** per round — benches measure
//! the algorithm, not the allocator. The pool's counters are folded into
//! [`RunMetrics`] and asserted on by the allocation-regression tests
//! (`tests/zero_alloc.rs` at the workspace root).
//!
//! [`Comm`] exposes the zero-copy surface to algorithms:
//!
//! * [`Comm::acquire`] / [`Comm::recycle`] — pooled scratch;
//! * [`Comm::send_and_recv_into`] — one exchange, received bytes written
//!   into a caller-provided buffer (the allocating
//!   [`send_and_recv`](Comm::send_and_recv) remains as a wrapper);
//! * every collective in `bruck-collectives` has a `run_into` /
//!   `*_into` variant writing into caller-owned output, with the
//!   allocating form kept as a thin wrapper.
//!
//! # Example
//!
//! ```
//! use bruck_net::{Cluster, ClusterConfig};
//!
//! // 4 processors, 1 port, linear cost model: rotate a token.
//! let cfg = ClusterConfig::new(4).with_ports(1);
//! let out = Cluster::run(&cfg, |ep| {
//!     let right = (ep.rank() + 1) % ep.size();
//!     let left = (ep.rank() + ep.size() - 1) % ep.size();
//!     let msg = ep.send_and_recv(right, &[ep.rank() as u8], left, 7)?;
//!     Ok(msg[0] as usize)
//! })
//! .unwrap();
//! assert_eq!(out.results, vec![3, 0, 1, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod comm;
pub mod deadline;
pub mod endpoint;
pub mod error;
pub mod failure;
pub mod fault;
pub mod frame;
pub mod mailbox;
pub mod membership;
pub mod message;
pub mod metrics;
pub mod pool;
pub mod reliable;
pub mod socket;
pub mod tcp;
pub mod trace;
pub mod transport;
pub mod vbarrier;

pub use bruck_model::tuning::WireTuning;
pub use cluster::{Cluster, ClusterConfig, ResilientOutput, RunOutput, RunReport, SurvivorView};
pub use comm::{Comm, Group, GroupComm};
pub use deadline::Deadline;
pub use endpoint::{Endpoint, GatherSendSpec, RecvSpec, SendSpec};
pub use error::NetError;
pub use failure::FailureDetector;
pub use fault::{ChaosEvent, ChaosSchedule, FaultPlan, LinkRates, RoundClock, SocketFault};
pub use membership::{
    Membership, MembershipStats, MembershipView, RankState, RecoveryPolicy, ViewDelta,
};
pub use message::{Message, Tag};
pub use metrics::{FabricStats, LinkStats, RankMetrics, RunMetrics};
pub use pool::{BufferPool, PoolStats};
pub use reliable::Reliability;
#[cfg(unix)]
pub use socket::SocketCluster;
pub use tcp::{
    FabricConfig, ScaleOutput, ScaleResilientOutput, TcpFabric, TcpRankTransport, TcpScaleCluster,
};
pub use trace::{Trace, TraceEvent};
pub use transport::{ChannelTransport, Transport};

//! Cluster membership views, rank rejoin, and flap-damped recovery
//! policies.
//!
//! The [`FailureDetector`](crate::failure::FailureDetector) answers one
//! question — *who died during this run?* — as a monotone dead set
//! whose version number tags every in-run retry epoch. That is the
//! right primitive **inside** an attempt (a dead set can only grow
//! while traffic is in flight), but it cannot express recovery: a rank
//! that was killed, restarted, and is ready to serve again is still
//! "dead" forever.
//!
//! This module generalizes the one-shot verdict into a **membership
//! view log** that lives *across* attempts. Between attempts — at a
//! **collective boundary**, when no traffic is in flight and every
//! surviving rank holds the same verdict — the
//! [`Cluster::run_resilient`](crate::cluster::Cluster::run_resilient)
//! driver folds the attempt's evictions into the log, optionally waits
//! for quarantined ranks to become re-admittable, and starts the next
//! attempt from the new view. In-flight attempts therefore never see a
//! membership change mid-round: within an attempt the detector's
//! monotone epoch tags still rule, and the view only steps at the
//! boundary.
//!
//! # View ids subsume epoch tags
//!
//! A [`MembershipView`]'s `id` is the length of the delta log: every
//! eviction and every admission appends exactly one [`ViewDelta`], so
//! two views with the same id over the same cluster hold the *same
//! member set* (the log is deterministic given the same fault
//! history). Within one attempt the failure-detector version (the tag
//! epoch) counts in-run deaths; at the boundary each of those deaths
//! becomes one `Evict` delta, so the view id advances by at least as
//! much as the epoch did — the view id is the cross-attempt
//! generalization of the in-run epoch (`view id ⊇ epoch tags`).
//!
//! # Rejoin and flap damping
//!
//! An evicted rank enters **quarantine**: a hold-down window that
//! doubles with every eviction of the same rank
//! (`base · 2^(flaps−1)`, capped), so a *flapping* rank — one that
//! repeatedly fails and rejoins — earns exponentially growing
//! exclusion instead of destabilizing every collective. When the
//! window has elapsed and the caller's [`RecoveryPolicy`] allows it,
//! the rank is re-admitted at the next collective boundary with a
//! designated **sponsor** (the lowest-ranked current member) recorded
//! in the admission delta — the member a rejoining rank syncs the
//! current view from.
//!
//! The state machine, per rank:
//!
//! ```text
//! member ──(accused in-run)──▶ suspected ──(verdict)──▶ evicted
//!    ▲                                                     │
//!    │                                        flap-damped quarantine
//!    └────────────(re-admitted at boundary)── quarantined ◀┘
//!                        = rejoined
//! ```
//!
//! `suspected` is transient and lives inside the
//! [`FailureDetector`](crate::failure::FailureDetector) (an accusation
//! under arbitration); this registry only sees the settled verdict, so
//! [`RankState`] has no `Suspected` variant.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How [`Cluster::run_resilient`](crate::cluster::Cluster::run_resilient)
/// responds to rank failures between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Evict failed ranks and continue with the survivors — the PR 2
    /// behavior. Evicted ranks never return.
    #[default]
    ShrinkOnly,
    /// After evicting, wait up to `budget` at the collective boundary
    /// for quarantined ranks whose hold-down window expires in time,
    /// re-admit them, and run the next attempt over the restored
    /// membership. Ranks whose (flap-damped) quarantine exceeds the
    /// budget stay out and the survivors proceed without them.
    WaitForRejoin {
        /// Maximum boundary wait per failed attempt.
        budget: Duration,
    },
    /// Evict failed ranks, but abort the whole run with
    /// [`NetError::RanksFailed`](crate::error::NetError::RanksFailed)
    /// as soon as fewer than `min_quorum` members remain — for callers
    /// who would rather fail fast than compute on a degraded group.
    FailFast {
        /// Minimum acceptable member count.
        min_quorum: usize,
    },
}

/// A rank's position in the recovery lifecycle, as seen by the
/// membership registry (the transient `suspected` stage lives in the
/// failure detector — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankState {
    /// In the current view and never evicted.
    Member,
    /// Out of the view; the flap-damped quarantine window is still
    /// running, so the rank cannot be re-admitted yet.
    Quarantined,
    /// Out of the view with the quarantine window elapsed; awaiting a
    /// boundary admission (never granted under
    /// [`RecoveryPolicy::ShrinkOnly`], so this is its terminal state).
    Evicted,
    /// Back in the current view after at least one eviction.
    Rejoined,
}

/// One step of the membership view log. The view id is the log length,
/// so every delta advances the view by exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewDelta {
    /// `rank` left the view (failure verdict folded at a boundary).
    Evict {
        /// The evicted rank (original numbering).
        rank: usize,
    },
    /// `rank` re-entered the view, syncing through `sponsor` — the
    /// lowest-ranked member at admission time, the designated server
    /// of the current view for the rejoiner.
    Admit {
        /// The re-admitted rank (original numbering).
        rank: usize,
        /// The member that sponsored the admission.
        sponsor: usize,
    },
}

/// An immutable snapshot of the membership at one view id.
///
/// Two snapshots of the same cluster with equal `id` hold equal
/// `members` — the id is the length of the deterministic delta log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    /// Number of deltas applied to reach this view. Strictly increases
    /// with every eviction and admission; majorizes any in-attempt
    /// failure-detector epoch folded at the boundary.
    pub id: u64,
    /// Current members, ascending, in original-rank numbering.
    pub members: Vec<usize>,
}

impl MembershipView {
    /// Whether `rank` is in this view.
    #[must_use]
    pub fn contains(&self, rank: usize) -> bool {
        self.members.binary_search(&rank).is_ok()
    }

    /// Member count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty (every rank evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Per-run membership counters, folded into
/// [`RunMetrics`](crate::metrics::RunMetrics) by the resilient driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MembershipStats {
    /// View-log length: total evictions + admissions.
    pub view_changes: u64,
    /// Ranks evicted (a flapping rank counts once per eviction).
    pub evictions: u64,
    /// Ranks re-admitted after quarantine.
    pub rejoins: u64,
    /// Quarantine windows started (== evictions while rejoin-capable
    /// accounting is on; kept separate so a future suspend-without-
    /// eviction path can diverge).
    pub quarantines: u64,
}

impl MembershipStats {
    /// Sum of two counter sets (for folding sub-runs together).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            view_changes: self.view_changes + other.view_changes,
            evictions: self.evictions + other.evictions,
            rejoins: self.rejoins + other.rejoins,
            quarantines: self.quarantines + other.quarantines,
        }
    }
}

/// Default flap-damping base quarantine (first eviction's hold-down).
pub const DEFAULT_BASE_QUARANTINE: Duration = Duration::from_millis(10);

/// Hard cap on any single quarantine window, however many flaps.
pub const MAX_QUARANTINE: Duration = Duration::from_secs(30);

struct Inner {
    member: Vec<bool>,
    /// Evictions per rank; drives the exponential hold-down.
    flaps: Vec<u32>,
    /// End of the rank's current quarantine window, if ever evicted.
    until: Vec<Option<Instant>>,
    /// Restart count: bumped on every admission (incarnation 0 is the
    /// original membership).
    incarnation: Vec<u64>,
    log: Vec<ViewDelta>,
    stats: MembershipStats,
}

/// The cross-attempt membership registry: a delta log over the
/// original rank set with flap-damped quarantine accounting.
///
/// One instance lives for the duration of a
/// [`Cluster::run_resilient`](crate::cluster::Cluster::run_resilient)
/// call; all mutation happens at collective boundaries (between
/// attempts), never while an attempt is in flight.
pub struct Membership {
    n: usize,
    base_quarantine: Duration,
    max_quarantine: Duration,
    inner: Mutex<Inner>,
}

impl Membership {
    /// A full membership over ranks `0..n` at view id 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "membership needs at least one rank");
        Self {
            n,
            base_quarantine: DEFAULT_BASE_QUARANTINE,
            max_quarantine: MAX_QUARANTINE,
            inner: Mutex::new(Inner {
                member: vec![true; n],
                flaps: vec![0; n],
                until: vec![None; n],
                incarnation: vec![0; n],
                log: Vec::new(),
                stats: MembershipStats::default(),
            }),
        }
    }

    /// Override the first-eviction quarantine window (doubles per flap).
    #[must_use]
    pub fn with_base_quarantine(mut self, base: Duration) -> Self {
        self.base_quarantine = base;
        self
    }

    /// Override the quarantine cap.
    #[must_use]
    pub fn with_max_quarantine(mut self, max: Duration) -> Self {
        self.max_quarantine = max;
        self
    }

    /// The original cluster size this registry was built over.
    #[must_use]
    pub fn original_n(&self) -> usize {
        self.n
    }

    /// Snapshot the current view.
    #[must_use]
    pub fn view(&self) -> MembershipView {
        let inner = self.inner.lock().expect("membership lock");
        MembershipView {
            id: inner.log.len() as u64,
            members: (0..self.n).filter(|&r| inner.member[r]).collect(),
        }
    }

    /// Current view id (the delta-log length).
    #[must_use]
    pub fn view_id(&self) -> u64 {
        self.inner.lock().expect("membership lock").log.len() as u64
    }

    /// Current members, ascending, original numbering.
    #[must_use]
    pub fn members(&self) -> Vec<usize> {
        self.view().members
    }

    /// The rank's lifecycle state right now.
    #[must_use]
    pub fn state(&self, rank: usize) -> RankState {
        let inner = self.inner.lock().expect("membership lock");
        if inner.member[rank] {
            if inner.flaps[rank] == 0 {
                RankState::Member
            } else {
                RankState::Rejoined
            }
        } else {
            match inner.until[rank] {
                Some(t) if Instant::now() < t => RankState::Quarantined,
                _ => RankState::Evicted,
            }
        }
    }

    /// Evictions recorded against `rank` so far.
    #[must_use]
    pub fn flaps(&self, rank: usize) -> u32 {
        self.inner.lock().expect("membership lock").flaps[rank]
    }

    /// The rank's restart count (bumped on every admission).
    #[must_use]
    pub fn incarnation(&self, rank: usize) -> u64 {
        self.inner.lock().expect("membership lock").incarnation[rank]
    }

    /// Remaining quarantine for a non-member, if its window is still
    /// running.
    #[must_use]
    pub fn quarantine_remaining(&self, rank: usize) -> Option<Duration> {
        let inner = self.inner.lock().expect("membership lock");
        if inner.member[rank] {
            return None;
        }
        inner.until[rank].and_then(|t| t.checked_duration_since(Instant::now()))
    }

    /// Snapshot of the delta log (the view id is its length).
    #[must_use]
    pub fn log(&self) -> Vec<ViewDelta> {
        self.inner.lock().expect("membership lock").log.clone()
    }

    /// Counter snapshot for folding into run metrics.
    #[must_use]
    pub fn stats(&self) -> MembershipStats {
        self.inner.lock().expect("membership lock").stats
    }

    /// Members that have been evicted and re-admitted at least once
    /// and are in the current view.
    #[must_use]
    pub fn rejoined_ranks(&self) -> Vec<usize> {
        let inner = self.inner.lock().expect("membership lock");
        (0..self.n)
            .filter(|&r| inner.member[r] && inner.flaps[r] > 0)
            .collect()
    }

    /// Ranks currently outside the view, ascending.
    #[must_use]
    pub fn evicted_ranks(&self) -> Vec<usize> {
        let inner = self.inner.lock().expect("membership lock");
        (0..self.n).filter(|&r| !inner.member[r]).collect()
    }

    /// Fold a failure verdict into the view at a collective boundary:
    /// evict `rank` and start its flap-damped quarantine window
    /// (`base · 2^(flaps−1)`, capped). Returns the window length.
    /// Evicting a rank that is already out is a no-op returning its
    /// remaining window (zero if elapsed).
    pub fn evict(&self, rank: usize) -> Duration {
        assert!(rank < self.n, "rank {rank} out of range 0..{}", self.n);
        let mut inner = self.inner.lock().expect("membership lock");
        if !inner.member[rank] {
            return inner.until[rank]
                .and_then(|t| t.checked_duration_since(Instant::now()))
                .unwrap_or(Duration::ZERO);
        }
        inner.member[rank] = false;
        inner.flaps[rank] += 1;
        let exp = inner.flaps[rank].saturating_sub(1).min(20);
        let window = self
            .base_quarantine
            .saturating_mul(1u32 << exp)
            .min(self.max_quarantine);
        inner.until[rank] = Some(Instant::now() + window);
        inner.log.push(ViewDelta::Evict { rank });
        inner.stats.evictions += 1;
        inner.stats.quarantines += 1;
        inner.stats.view_changes += 1;
        window
    }

    /// Re-admit every non-member whose quarantine window has elapsed
    /// by `now`, recording each admission with its sponsor (the lowest
    /// current member, or the rejoiner itself if the view was empty).
    /// Returns the admitted ranks, ascending.
    pub fn admit_ready(&self, now: Instant) -> Vec<usize> {
        let mut inner = self.inner.lock().expect("membership lock");
        let ready: Vec<usize> = (0..self.n)
            .filter(|&r| !inner.member[r] && inner.until[r].is_some_and(|t| t <= now))
            .collect();
        for &rank in &ready {
            let sponsor = (0..self.n).find(|&r| inner.member[r]).unwrap_or(rank);
            inner.member[rank] = true;
            inner.until[rank] = None;
            inner.incarnation[rank] += 1;
            inner.log.push(ViewDelta::Admit { rank, sponsor });
            inner.stats.rejoins += 1;
            inner.stats.view_changes += 1;
        }
        ready
    }

    /// Boundary wait for [`RecoveryPolicy::WaitForRejoin`]: if any
    /// quarantined rank's window expires within `budget`, sleep —
    /// with jittered exponential backoff, modelling the restarted
    /// rank's reconnect attempts — until the last such window has
    /// elapsed, then re-admit everything that became ready. Ranks
    /// whose window outlasts the budget are left quarantined. Returns
    /// the admitted ranks, ascending (empty when nothing could rejoin
    /// in time).
    pub fn wait_for_rejoin(&self, budget: Duration) -> Vec<usize> {
        let now = Instant::now();
        let deadline = now + budget;
        let target = {
            let inner = self.inner.lock().expect("membership lock");
            (0..self.n)
                .filter(|&r| !inner.member[r])
                .filter_map(|r| inner.until[r])
                .filter(|&t| t <= deadline)
                .max()
        };
        let Some(target) = target else {
            return Vec::new();
        };
        // Jittered exponential backoff toward the release instant: the
        // same discipline a restarted rank uses when re-binding its
        // socket, so boundary waits and reconnect storms stay
        // desynchronized across ranks. Deterministic jitter (splitmix64
        // of the iteration count) keeps runs reproducible.
        let mut slice = Duration::from_micros(200);
        let mut iter = 0u64;
        loop {
            let now = Instant::now();
            let Some(remaining) = target.checked_duration_since(now) else {
                break;
            };
            let jitter_ns =
                mix64(iter.wrapping_add(0x9E37_79B9)) % (slice.as_nanos().max(1) as u64 / 2 + 1);
            let nap = (slice + Duration::from_nanos(jitter_ns)).min(remaining);
            std::thread::sleep(nap.max(Duration::from_micros(50)));
            slice = (slice * 2).min(Duration::from_millis(16));
            iter += 1;
        }
        self.admit_ready(Instant::now())
    }
}

/// splitmix64 finalizer — the same mixer the fault layer uses for its
/// deterministic wire draws.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_membership_is_full_at_view_zero() {
        let m = Membership::new(4);
        let v = m.view();
        assert_eq!(v.id, 0);
        assert_eq!(v.members, vec![0, 1, 2, 3]);
        assert!(v.contains(2) && !v.is_empty() && v.len() == 4);
        for r in 0..4 {
            assert_eq!(m.state(r), RankState::Member);
            assert_eq!(m.incarnation(r), 0);
        }
    }

    #[test]
    fn evict_starts_quarantine_and_steps_view() {
        let m = Membership::new(4).with_base_quarantine(Duration::from_millis(50));
        let w = m.evict(2);
        assert_eq!(w, Duration::from_millis(50));
        assert_eq!(m.view_id(), 1);
        assert_eq!(m.members(), vec![0, 1, 3]);
        assert_eq!(m.state(2), RankState::Quarantined);
        assert!(m.quarantine_remaining(2).is_some());
        assert_eq!(m.log(), vec![ViewDelta::Evict { rank: 2 }]);
        let s = m.stats();
        assert_eq!((s.evictions, s.quarantines, s.view_changes), (1, 1, 1));
        // Double eviction is a no-op.
        m.evict(2);
        assert_eq!(m.view_id(), 1);
        assert_eq!(m.stats().evictions, 1);
    }

    #[test]
    fn quarantine_grows_exponentially_and_caps() {
        let m = Membership::new(2)
            .with_base_quarantine(Duration::from_millis(10))
            .with_max_quarantine(Duration::from_millis(35));
        assert_eq!(m.evict(1), Duration::from_millis(10));
        m.admit_ready(Instant::now() + Duration::from_secs(1));
        assert_eq!(m.evict(1), Duration::from_millis(20));
        m.admit_ready(Instant::now() + Duration::from_secs(1));
        // 40 ms would be next; the cap clamps it.
        assert_eq!(m.evict(1), Duration::from_millis(35));
        assert_eq!(m.flaps(1), 3);
    }

    #[test]
    fn admission_records_sponsor_and_incarnation() {
        let m = Membership::new(4).with_base_quarantine(Duration::ZERO);
        m.evict(1);
        m.evict(0);
        let admitted = m.admit_ready(Instant::now());
        assert_eq!(admitted, vec![0, 1]);
        assert_eq!(m.state(0), RankState::Rejoined);
        assert_eq!(m.state(1), RankState::Rejoined);
        assert_eq!(m.incarnation(0), 1);
        assert_eq!(m.rejoined_ranks(), vec![0, 1]);
        let log = m.log();
        // Rank 0 was admitted first (ascending) with sponsor 2 — the
        // lowest member while 0 and 1 were both out.
        assert_eq!(
            log[2],
            ViewDelta::Admit {
                rank: 0,
                sponsor: 2
            }
        );
        // By rank 1's admission, 0 was back and sponsors it.
        assert_eq!(
            log[3],
            ViewDelta::Admit {
                rank: 1,
                sponsor: 0
            }
        );
        assert_eq!(m.view_id(), 4);
        assert_eq!(m.stats().rejoins, 2);
    }

    #[test]
    fn wait_for_rejoin_admits_within_budget() {
        let m = Membership::new(4).with_base_quarantine(Duration::from_millis(20));
        m.evict(3);
        let t0 = Instant::now();
        let admitted = m.wait_for_rejoin(Duration::from_millis(500));
        assert_eq!(admitted, vec![3]);
        assert!(
            t0.elapsed() >= Duration::from_millis(15),
            "must wait out the window"
        );
        assert_eq!(m.members(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn wait_for_rejoin_leaves_long_quarantines_out() {
        let m = Membership::new(4).with_base_quarantine(Duration::from_millis(200));
        m.evict(1);
        let t0 = Instant::now();
        let admitted = m.wait_for_rejoin(Duration::from_millis(20));
        assert!(admitted.is_empty());
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "must not wait past the budget for an unreachable window"
        );
        assert_eq!(m.state(1), RankState::Quarantined);
        assert_eq!(
            m.members(),
            vec![0, 1, 2, 3]
                .into_iter()
                .filter(|&r| r != 1)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn same_delta_sequence_yields_same_view() {
        let a = Membership::new(8).with_base_quarantine(Duration::ZERO);
        let b = Membership::new(8).with_base_quarantine(Duration::ZERO);
        for m in [&a, &b] {
            m.evict(5);
            m.evict(2);
            m.admit_ready(Instant::now());
        }
        assert_eq!(a.view_id(), b.view_id());
        assert_eq!(a.view(), b.view());
        assert_eq!(a.log(), b.log());
    }
}

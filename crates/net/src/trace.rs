//! Communication tracing.
//!
//! When enabled, every message send is recorded. Traces serve two
//! purposes: (1) `bruck-sched` reconstructs the executed schedule from a
//! trace and cross-checks it against the algorithm's *planned* schedule;
//! (2) the figure harness can dump traffic matrices.

use std::sync::{Arc, Mutex};

use crate::message::Tag;

/// One recorded send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: u64,
    /// The sender's 0-based round index when the send happened.
    pub round: u64,
    /// Virtual departure time at the sender.
    pub depart: f64,
}

/// A shared, append-only trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Trace {
    /// A fresh empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event (called by endpoints; cheap, amortized lock).
    pub fn record(&self, event: TraceEvent) {
        self.events
            .lock()
            .expect("trace mutex poisoned")
            .push(event);
    }

    /// Snapshot all events, sorted by `(round, src, dst)` for determinism.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut v = self.events.lock().expect("trace mutex poisoned").clone();
        v.sort_by_key(|a| (a.round, a.src, a.dst, a.tag));
        v
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace mutex poisoned").len()
    }

    /// Whether no event has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n × n` byte-traffic matrix (`matrix[src][dst]`).
    #[must_use]
    pub fn traffic_matrix(&self, n: usize) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; n]; n];
        for e in self.events.lock().expect("trace mutex poisoned").iter() {
            m[e.src][e.dst] += e.bytes;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: usize, dst: usize, round: u64, bytes: u64) -> TraceEvent {
        TraceEvent {
            src,
            dst,
            tag: 0,
            bytes,
            round,
            depart: 0.0,
        }
    }

    #[test]
    fn snapshot_is_sorted() {
        let t = Trace::new();
        t.record(ev(2, 0, 1, 5));
        t.record(ev(0, 1, 0, 3));
        t.record(ev(1, 2, 0, 4));
        let s = t.snapshot();
        assert_eq!(s.len(), 3);
        assert_eq!((s[0].src, s[0].round), (0, 0));
        assert_eq!((s[2].src, s[2].round), (2, 1));
    }

    #[test]
    fn traffic_matrix_accumulates() {
        let t = Trace::new();
        t.record(ev(0, 1, 0, 10));
        t.record(ev(0, 1, 1, 7));
        t.record(ev(1, 0, 0, 2));
        let m = t.traffic_matrix(2);
        assert_eq!(m[0][1], 17);
        assert_eq!(m[1][0], 2);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn shared_clones_see_same_events() {
        let t = Trace::new();
        let t2 = t.clone();
        t.record(ev(0, 1, 0, 1));
        assert_eq!(t2.len(), 1);
        assert!(!t2.is_empty());
    }
}

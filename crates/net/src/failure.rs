//! Cluster-wide failure agreement.
//!
//! The paper's fully connected model keeps operating "in the presence of
//! faults (assuming connectivity is maintained)" — but only if the
//! survivors can *agree* on who failed. In a real machine that takes a
//! membership service; in this in-process substrate the
//! [`FailureDetector`] plays that role: a cluster-shared, monotone set
//! of ranks declared dead, fed by fault-injection kills and by the
//! reliability layer's retry cap, and polled by every endpoint while it
//! waits for messages.
//!
//! Monotonicity is the key property: ranks are only ever *added* to the
//! dead set, so any two snapshots are ordered by inclusion and repeated
//! shrink-and-retry converges. The `version` counter lets waiters poll
//! with one atomic load instead of building a snapshot per poll.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The shared, monotone set of ranks declared dead.
#[derive(Debug)]
pub struct FailureDetector {
    dead: Vec<AtomicBool>,
    version: AtomicU64,
    /// Serializes unreachability *accusations* (not authoritative kills)
    /// so an asymmetric partition resolves to exactly one verdict.
    arbiter: Mutex<()>,
}

impl FailureDetector {
    /// A detector for an `n`-rank cluster with no failures yet.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            version: AtomicU64::new(0),
            arbiter: Mutex::new(()),
        }
    }

    /// Declare `rank` dead (idempotent). This is the *authoritative*
    /// path — fault-injection kills and self-reported deaths — and needs
    /// no arbitration.
    pub fn mark_dead(&self, rank: usize) {
        if !self.dead[rank].swap(true, Ordering::SeqCst) {
            self.version.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// `reporter` accuses `peer` of being unreachable (retry cap or
    /// watchdog escalation). Unlike [`mark_dead`](Self::mark_dead) this
    /// is an *accusation*: under an asymmetric partition both endpoints
    /// of the cut may accuse each other, and naively honouring both
    /// would kill the whole pair. Arbitration, under one lock:
    ///
    /// - a dead reporter's accusation is void (it lost a previous
    ///   arbitration, or was killed outright);
    /// - an already-dead peer needs no second verdict.
    ///
    /// First live accusation wins, so exactly one endpoint of a mutual
    /// accusation dies, and the last live rank can never be eliminated —
    /// all its would-be accusers are dead, so their reports are void.
    /// Returns whether the accusation was honoured.
    pub fn report_unreachable(&self, reporter: usize, peer: usize) -> bool {
        let _guard = self.arbiter.lock().unwrap();
        if self.is_dead(reporter) || self.is_dead(peer) {
            return false;
        }
        self.mark_dead(peer);
        true
    }

    /// Whether `rank` has been declared dead.
    #[must_use]
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    /// Number of distinct ranks declared dead so far. Monotone; cheap
    /// enough (one atomic load) to poll from a receive wait loop.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// A version-consistent snapshot: the returned version counts
    /// exactly the returned ranks, so two ranks that observe the same
    /// version observed the *same* dead set. Spins across the (tiny)
    /// window where a concurrent [`FailureDetector::mark_dead`] has
    /// flipped a flag but not yet bumped the version.
    #[must_use]
    pub fn consistent_snapshot(&self) -> (u64, Vec<usize>) {
        loop {
            let v = self.version();
            let s = self.snapshot();
            if self.version() == v && s.len() as u64 == v {
                return (v, s);
            }
            std::hint::spin_loop();
        }
    }

    /// The dead ranks, ascending.
    #[must_use]
    pub fn snapshot(&self) -> Vec<usize> {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, d)| d.load(Ordering::SeqCst))
            .map(|(r, _)| r)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let d = FailureDetector::new(4);
        assert_eq!(d.version(), 0);
        assert!(d.snapshot().is_empty());
        assert!(!d.is_dead(2));
    }

    #[test]
    fn marking_is_idempotent_and_versioned() {
        let d = FailureDetector::new(4);
        d.mark_dead(2);
        d.mark_dead(2);
        assert_eq!(d.version(), 1);
        d.mark_dead(0);
        assert_eq!(d.version(), 2);
        assert_eq!(d.snapshot(), vec![0, 2]);
        assert!(d.is_dead(2) && d.is_dead(0) && !d.is_dead(1));
    }

    #[test]
    fn consistent_snapshot_counts_its_ranks() {
        let d = FailureDetector::new(5);
        d.mark_dead(3);
        d.mark_dead(1);
        assert_eq!(d.consistent_snapshot(), (2, vec![1, 3]));
    }

    #[test]
    fn mutual_accusation_kills_exactly_one() {
        let d = FailureDetector::new(4);
        assert!(d.report_unreachable(0, 1));
        // The loser's counter-accusation is void: it is already dead.
        assert!(!d.report_unreachable(1, 0));
        assert_eq!(d.snapshot(), vec![1]);
    }

    #[test]
    fn dead_reporter_cannot_eliminate_last_survivor() {
        let d = FailureDetector::new(3);
        d.mark_dead(1);
        assert!(d.report_unreachable(0, 2));
        // Both of rank 0's potential accusers are dead; their reports
        // are void and rank 0 survives.
        assert!(!d.report_unreachable(1, 0));
        assert!(!d.report_unreachable(2, 0));
        assert_eq!(d.snapshot(), vec![1, 2]);
    }

    #[test]
    fn accusing_the_already_dead_is_idempotent() {
        let d = FailureDetector::new(4);
        d.mark_dead(3);
        assert!(!d.report_unreachable(0, 3));
        assert_eq!(d.version(), 1);
    }
}

//! Transport abstraction: how bytes physically move between ranks.
//!
//! The model layer (rounds, ports, virtual time, metrics) is transport
//! independent; an [`Endpoint`](crate::Endpoint) drives any [`Transport`].
//! Two implementations ship:
//!
//! * [`ChannelTransport`] — in-process `std::sync::mpsc` channels (the
//!   default: fast, portable, deterministic);
//! * [`crate::socket::UdsTransport`] — Unix datagram sockets with framing
//!   and fragmentation (Unix only): real kernel I/O for wall-clock
//!   calibration experiments.

use std::time::Duration;

use crate::error::NetError;
use crate::mailbox::{MailSender, Mailbox};
use crate::message::{Message, Tag};
use crate::metrics::LinkStats;

/// A rank's physical connection to its peers.
pub trait Transport: Send {
    /// Deliver `msg` toward `msg.dst`. Must not deadlock against peers
    /// that are themselves mid-send (implementations either buffer
    /// unboundedly or interleave draining with sending).
    ///
    /// # Errors
    ///
    /// Transport-level failures.
    fn send(&mut self, msg: Message) -> Result<(), NetError>;

    /// Receive the next message from `from` with tag `tag`, waiting at
    /// most `timeout`. Out-of-order messages are parked internally.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] or [`NetError::Disconnected`].
    fn recv_match(&mut self, from: usize, tag: Tag, timeout: Duration)
        -> Result<Message, NetError>;

    /// Receive the next message from *any* source (parked messages
    /// first), waiting at most `timeout`; `Ok(None)` when nothing
    /// arrived. The reliability layer drives its ack/retransmit protocol
    /// through this.
    ///
    /// # Errors
    ///
    /// Transport-level failures other than an empty queue.
    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError>;

    /// Non-blocking selective receive: return the next `(from, tag)`
    /// match if one is already queued or parked, without waiting. The
    /// multiport round executor polls all of a round's expected receives
    /// through this, completing them in *arrival* order instead of
    /// head-of-line-blocking on the first spec.
    ///
    /// # Errors
    ///
    /// Transport-level failures other than "nothing there yet".
    fn try_match(&mut self, from: usize, tag: Tag) -> Result<Option<Message>, NetError> {
        match self.recv_match(from, tag, Duration::ZERO) {
            Ok(m) => Ok(Some(m)),
            Err(NetError::Timeout { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Block until at least one message is queued or parked (whatever its
    /// source or tag), or `timeout` elapses — *without* consuming it.
    /// This is the idle edge of the event loop and it is **required**: a
    /// correct implementation parks on the transport's own wakeup
    /// primitive (a channel/condvar wait, a blocking read with deadline)
    /// so an idle endpoint burns no CPU. The old provided default slept
    /// in 500 µs slices — a poll loop that both wasted cycles and added
    /// up to half a millisecond of wakeup latency per message — so it
    /// was removed rather than silently inherited.
    ///
    /// # Errors
    ///
    /// Transport-level failures.
    fn wait_any(&mut self, timeout: Duration) -> Result<(), NetError>;

    /// A short stable label for the kind of wire this transport drives
    /// (`"channel"`, `"uds"`, …). Wrapping sublayers (fault injection,
    /// reliability) must delegate to the wrapped transport, so the label
    /// identifies the *physical* substrate — calibration caches key their
    /// fitted `(β, τ)` by it.
    fn kind(&self) -> &'static str {
        "generic"
    }

    /// Drive any reliability sublayer until every in-flight frame this
    /// rank sent has been acknowledged (or its destination is known
    /// dead), giving up at `deadline`. A no-op for raw transports. The
    /// cluster runner flushes before counting a rank as done so shutdown
    /// can never race a still-unacked tail.
    ///
    /// # Errors
    ///
    /// Transport-level failures.
    fn flush(&mut self, deadline: std::time::Instant) -> Result<(), NetError> {
        let _ = deadline;
        Ok(())
    }

    /// Discard every queued and parked message (stale traffic from an
    /// aborted collective attempt). Returns how many were discarded.
    fn purge(&mut self) -> usize {
        0
    }

    /// Counters accumulated by wire sublayers (fault injection,
    /// reliability); zero for plain transports.
    fn link_stats(&self) -> LinkStats {
        LinkStats::default()
    }

    /// The reliability sublayer's current worst-link retransmission
    /// timeout, adapted from measured round-trip samples (and therefore
    /// warmed by calibration traffic). `None` for transports without a
    /// reliability sublayer. Callers use it to scale patience windows —
    /// per-round sub-budgets under a deadline, end-of-run linger — with
    /// the link latency actually observed instead of a fixed constant.
    fn rto_hint(&self) -> Option<Duration> {
        None
    }

    /// How long this transport wants the end-of-run linger phase to
    /// last: enough time for peers to retransmit un-acked tails and get
    /// answered, derived from the adaptive RTO. `None` for transports
    /// that need no linger (no reliability sublayer).
    fn linger_hint(&self) -> Option<Duration> {
        None
    }
}

/// The default in-process transport: one unbounded channel per rank.
#[derive(Debug)]
pub struct ChannelTransport {
    senders: Vec<MailSender>,
    mailbox: Mailbox,
}

impl ChannelTransport {
    /// Assemble from the peer sender list and this rank's mailbox.
    #[must_use]
    pub fn new(senders: Vec<MailSender>, mailbox: Mailbox) -> Self {
        Self { senders, mailbox }
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        // A send toward a dead rank is accepted by the wire; the failure
        // shows up at whoever waits for that rank.
        let _ = self.senders[msg.dst].send(msg);
        Ok(())
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        self.mailbox.recv_match(from, tag, timeout)
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        Ok(self.mailbox.recv_any(timeout))
    }

    fn wait_any(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.mailbox.wait_any(timeout);
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "channel"
    }

    fn purge(&mut self) -> usize {
        self.mailbox.purge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_transport_round_trip() {
        let (tx, mb) = Mailbox::new(1);
        let mut t = ChannelTransport::new(vec![tx.clone(), tx], mb);
        t.send(Message {
            src: 0,
            dst: 1,
            tag: 9,
            payload: vec![1, 2],
            arrival: 0.5,
            seq: 0,
            ack: 0,
            checksum: None,
        })
        .unwrap();
        let m = t.recv_match(0, 9, Duration::from_millis(50)).unwrap();
        assert_eq!(m.payload, vec![1, 2]);
        assert_eq!(m.arrival, 0.5);
    }
}

//! A reusable barrier that also synchronizes virtual clocks.
//!
//! Every participant contributes its virtual time; all leave with the
//! maximum. Used by [`crate::Endpoint::barrier`] and at cluster teardown
//! so that per-rank virtual completion times are comparable.

use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct State {
    count: usize,
    generation: u64,
    max: f64,
    result: f64,
}

/// A generation-counted barrier carrying an `f64` max-reduction.
#[derive(Debug)]
pub struct VBarrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl VBarrier {
    /// Barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self {
            n,
            state: Mutex::new(State {
                count: 0,
                generation: 0,
                max: 0.0,
                result: 0.0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Wait for all `n` participants; returns the maximum of all
    /// contributed `clock` values.
    pub fn wait(&self, clock: f64) -> f64 {
        let mut s = self.state.lock().expect("barrier mutex poisoned");
        let gen = s.generation;
        s.max = s.max.max(clock);
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.result = s.max;
            s.max = 0.0;
            s.generation += 1;
            self.cv.notify_all();
            s.result
        } else {
            while s.generation == gen {
                s = self.cv.wait(s).expect("barrier mutex poisoned");
            }
            s.result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_passes_through() {
        let b = VBarrier::new(1);
        assert_eq!(b.wait(3.5), 3.5);
        assert_eq!(b.wait(1.0), 1.0); // reusable
    }

    #[test]
    fn max_reduction_across_threads() {
        let b = Arc::new(VBarrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait(i as f64))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3.0);
        }
    }

    #[test]
    fn reusable_across_generations() {
        let b = Arc::new(VBarrier::new(3));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let first = b.wait(i as f64);
                    let second = b.wait(10.0 + i as f64);
                    (first, second)
                })
            })
            .collect();
        for h in handles {
            let (first, second) = h.join().unwrap();
            assert_eq!(first, 2.0);
            assert_eq!(second, 12.0);
        }
    }
}

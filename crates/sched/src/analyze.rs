//! Schedule analysis: complexity measures and predicted time.

use bruck_model::complexity::Complexity;
use bruck_model::cost::CostModel;

use crate::schedule::Schedule;

/// Aggregate statistics of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// `(C1, C2)` per the paper's §1.2 measures.
    pub complexity: Complexity,
    /// Total bytes injected into the network.
    pub total_bytes: u64,
    /// Total number of messages.
    pub total_msgs: u64,
    /// Largest number of bytes sent by any single rank over the whole
    /// schedule (per-node load).
    pub max_rank_bytes: u64,
    /// Largest single message.
    pub max_message: u64,
}

impl ScheduleStats {
    /// Compute stats for a schedule. Empty rounds still count toward `C1`
    /// (they model enforced synchronization steps).
    #[must_use]
    pub fn of(schedule: &Schedule) -> Self {
        let mut complexity = Complexity::ZERO;
        let mut total_bytes = 0u64;
        let mut total_msgs = 0u64;
        let mut rank_bytes = vec![0u64; schedule.n];
        let mut max_message = 0u64;
        for round in &schedule.rounds {
            complexity = complexity.plus_round(round.max_bytes());
            for t in &round.transfers {
                total_bytes += t.bytes;
                total_msgs += 1;
                rank_bytes[t.src] += t.bytes;
                max_message = max_message.max(t.bytes);
            }
        }
        Self {
            complexity,
            total_bytes,
            total_msgs,
            max_rank_bytes: rank_bytes.into_iter().max().unwrap_or(0),
            max_message,
        }
    }

    /// Predicted wall time of the schedule under `model`, assuming
    /// synchronous rounds (the paper's `T = C1·β + C2·τ` shape,
    /// generalized through [`CostModel::estimate`]).
    #[must_use]
    pub fn predicted_time(&self, model: &dyn CostModel) -> f64 {
        model.estimate(self.complexity)
    }
}

/// Predicted time of a schedule by *event simulation* rather than the
/// closed form: per-rank clocks, message arrival propagation — the same
/// semantics the live cluster applies, minus the threads. Use this to
/// sanity-check that closed-form and event-level predictions agree on
/// synchronous schedules, and to time *skewed* schedules correctly.
#[must_use]
pub fn simulate_time(schedule: &Schedule, model: &dyn CostModel) -> f64 {
    let mut clocks = vec![0.0f64; schedule.n];
    for round in &schedule.rounds {
        let t0 = clocks.clone();
        let mut next = clocks.clone();
        for t in &round.transfers {
            let depart = t0[t.src] + model.send_cost_between(t.src, t.dst, t.bytes);
            let arrival = depart + model.latency_between(t.src, t.dst, t.bytes);
            let completion =
                t0[t.dst].max(arrival) + model.recv_cost_between(t.src, t.dst, t.bytes);
            next[t.src] = next[t.src].max(depart);
            next[t.dst] = next[t.dst].max(completion);
        }
        clocks = next;
    }
    clocks.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Transfer;
    use bruck_model::cost::LinearModel;

    fn ring_schedule(n: usize, rounds: usize, bytes: u64) -> Schedule {
        let mut s = Schedule::new(n, 1);
        for _ in 0..rounds {
            s.push_round(
                (0..n)
                    .map(|r| Transfer {
                        src: r,
                        dst: (r + 1) % n,
                        bytes,
                    })
                    .collect(),
            );
        }
        s
    }

    #[test]
    fn stats_of_ring() {
        let s = ring_schedule(4, 3, 100);
        let stats = ScheduleStats::of(&s);
        assert_eq!(stats.complexity, Complexity::new(3, 300));
        assert_eq!(stats.total_bytes, 1200);
        assert_eq!(stats.total_msgs, 12);
        assert_eq!(stats.max_rank_bytes, 300);
        assert_eq!(stats.max_message, 100);
    }

    #[test]
    fn closed_form_equals_simulation_on_synchronous_schedule() {
        let s = ring_schedule(8, 5, 64);
        let model = LinearModel::sp1();
        let closed = ScheduleStats::of(&s).predicted_time(&model);
        let sim = simulate_time(&s, &model);
        assert!((closed - sim).abs() < 1e-12, "closed {closed} vs sim {sim}");
    }

    #[test]
    fn simulation_handles_skew() {
        // Rank 0 sends a huge message in round 0 while others idle; in
        // round 1 everyone depends on rank 1 → the critical path is
        // rank 0's big send (through rank 1), not the sum of round maxima
        // of a synchronous schedule... here closed form over-approximates
        // by treating round 1 as starting after the global round 0.
        let model = LinearModel::new(0.0, 1e-6);
        let mut s = Schedule::new(3, 1);
        s.push_round(vec![Transfer {
            src: 0,
            dst: 1,
            bytes: 1000,
        }]);
        s.push_round(vec![Transfer {
            src: 2,
            dst: 0,
            bytes: 10,
        }]);
        let sim = simulate_time(&s, &model);
        // Rank 2's round-1 send departs at its own clock (0), arrives to
        // rank 0 at 10µs ⇒ makespan dominated by rank 1's 1000µs receive.
        assert!((sim - 1000e-6).abs() < 1e-12, "sim = {sim}");
        let closed = ScheduleStats::of(&s).predicted_time(&model);
        assert!(closed > sim, "closed form should be pessimistic here");
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new(4, 1);
        let stats = ScheduleStats::of(&s);
        assert_eq!(stats.complexity, Complexity::ZERO);
        assert_eq!(simulate_time(&s, &LinearModel::sp1()), 0.0);
    }
}

//! The schedule data structure and its invariants.

use bruck_net::trace::Trace;

/// One rank's view of one round: `(dst, bytes)` sends and `src` receives.
pub type RankRound = (Vec<(usize, u64)>, Vec<usize>);

/// One point-to-point transfer within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transfer {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message size in bytes.
    pub bytes: u64,
}

/// One communication round: a set of transfers that happen concurrently.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Round {
    /// The transfers, kept sorted by `(src, dst)`.
    pub transfers: Vec<Transfer>,
}

impl Round {
    /// Size of the largest message in the round (the round's `C2`
    /// contribution).
    #[must_use]
    pub fn max_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).max().unwrap_or(0)
    }

    /// Total bytes injected in the round.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }
}

/// A complete static communication schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Number of processors.
    pub n: usize,
    /// Port count the schedule was planned for.
    pub ports: usize,
    /// Rounds in execution order.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// An empty schedule for `n` ranks and `ports` ports.
    #[must_use]
    pub fn new(n: usize, ports: usize) -> Self {
        Self {
            n,
            ports,
            rounds: Vec::new(),
        }
    }

    /// Append a round from an unsorted transfer list.
    pub fn push_round(&mut self, mut transfers: Vec<Transfer>) {
        transfers.sort_unstable();
        self.rounds.push(Round { transfers });
    }

    /// Number of rounds (`C1`).
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Rebuild a schedule from a live trace (round indices in the trace
    /// are per-sender; the collectives in this workspace keep them
    /// globally aligned). Zero-byte idle rounds cannot be reconstructed,
    /// so callers compare against plans with empty rounds stripped via
    /// [`Schedule::without_empty_rounds`].
    #[must_use]
    pub fn from_trace(trace: &Trace, n: usize, ports: usize) -> Self {
        let events = trace.snapshot();
        let num_rounds = events.iter().map(|e| e.round + 1).max().unwrap_or(0) as usize;
        let mut rounds = vec![Vec::new(); num_rounds];
        for e in &events {
            rounds[e.round as usize].push(Transfer {
                src: e.src,
                dst: e.dst,
                bytes: e.bytes,
            });
        }
        let mut s = Self::new(n, ports);
        for r in rounds {
            s.push_round(r);
        }
        s
    }

    /// A copy with all empty rounds removed (for comparing against traces,
    /// which cannot observe idle rounds).
    #[must_use]
    pub fn without_empty_rounds(&self) -> Self {
        Self {
            n: self.n,
            ports: self.ports,
            rounds: self
                .rounds
                .iter()
                .filter(|r| !r.transfers.is_empty())
                .cloned()
                .collect(),
        }
    }

    /// Check the k-port model invariants round by round:
    ///
    /// * every rank appears as `src` in at most `ports` transfers and as
    ///   `dst` in at most `ports` transfers per round;
    /// * within a round, a rank's destinations (and sources) are distinct;
    /// * no self-sends; all ranks in `[0, n)`.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (ri, round) in self.rounds.iter().enumerate() {
            let mut sends = vec![0usize; self.n];
            let mut recvs = vec![0usize; self.n];
            let mut seen = std::collections::HashSet::new();
            for t in &round.transfers {
                if t.src >= self.n || t.dst >= self.n {
                    return Err(format!("round {ri}: rank out of range in {t:?}"));
                }
                if t.src == t.dst {
                    return Err(format!("round {ri}: self-send in {t:?}"));
                }
                if !seen.insert((t.src, t.dst)) {
                    return Err(format!("round {ri}: duplicate pair {} → {}", t.src, t.dst));
                }
                sends[t.src] += 1;
                recvs[t.dst] += 1;
            }
            for rank in 0..self.n {
                if sends[rank] > self.ports {
                    return Err(format!(
                        "round {ri}: rank {rank} sends {} > k={}",
                        sends[rank], self.ports
                    ));
                }
                if recvs[rank] > self.ports {
                    return Err(format!(
                        "round {ri}: rank {rank} receives {} > k={}",
                        recvs[rank], self.ports
                    ));
                }
            }
        }
        Ok(())
    }

    /// The transfers a given rank must perform, round by round:
    /// `(sends, recvs)` where sends are `(dst, bytes)` and recvs are
    /// `src`. Used by the replayer.
    #[must_use]
    pub fn rank_script(&self, rank: usize) -> Vec<RankRound> {
        self.rounds
            .iter()
            .map(|round| {
                let sends = round
                    .transfers
                    .iter()
                    .filter(|t| t.src == rank)
                    .map(|t| (t.dst, t.bytes))
                    .collect();
                let recvs = round
                    .transfers
                    .iter()
                    .filter(|t| t.dst == rank)
                    .map(|t| t.src)
                    .collect();
                (sends, recvs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_round_schedule() -> Schedule {
        let mut s = Schedule::new(3, 1);
        s.push_round(vec![
            Transfer {
                src: 0,
                dst: 1,
                bytes: 4,
            },
            Transfer {
                src: 1,
                dst: 2,
                bytes: 4,
            },
            Transfer {
                src: 2,
                dst: 0,
                bytes: 4,
            },
        ]);
        s.push_round(vec![Transfer {
            src: 1,
            dst: 0,
            bytes: 8,
        }]);
        s
    }

    #[test]
    fn valid_schedule_passes() {
        two_round_schedule().validate().unwrap();
    }

    #[test]
    fn round_aggregates() {
        let s = two_round_schedule();
        assert_eq!(s.rounds[0].max_bytes(), 4);
        assert_eq!(s.rounds[0].total_bytes(), 12);
        assert_eq!(s.rounds[1].max_bytes(), 8);
        assert_eq!(s.num_rounds(), 2);
    }

    #[test]
    fn port_violation_detected() {
        let mut s = Schedule::new(3, 1);
        s.push_round(vec![
            Transfer {
                src: 0,
                dst: 1,
                bytes: 1,
            },
            Transfer {
                src: 0,
                dst: 2,
                bytes: 1,
            },
        ]);
        let err = s.validate().unwrap_err();
        assert!(err.contains("sends 2 > k=1"), "{err}");
    }

    #[test]
    fn recv_port_violation_detected() {
        let mut s = Schedule::new(3, 1);
        s.push_round(vec![
            Transfer {
                src: 0,
                dst: 2,
                bytes: 1,
            },
            Transfer {
                src: 1,
                dst: 2,
                bytes: 1,
            },
        ]);
        let err = s.validate().unwrap_err();
        assert!(err.contains("receives 2 > k=1"), "{err}");
    }

    #[test]
    fn self_send_detected() {
        let mut s = Schedule::new(2, 1);
        s.push_round(vec![Transfer {
            src: 0,
            dst: 0,
            bytes: 1,
        }]);
        assert!(s.validate().unwrap_err().contains("self-send"));
    }

    #[test]
    fn duplicate_pair_detected() {
        let mut s = Schedule::new(2, 2);
        s.push_round(vec![
            Transfer {
                src: 0,
                dst: 1,
                bytes: 1,
            },
            Transfer {
                src: 0,
                dst: 1,
                bytes: 2,
            },
        ]);
        assert!(s.validate().unwrap_err().contains("duplicate pair"));
    }

    #[test]
    fn rank_script_extracts_view() {
        let s = two_round_schedule();
        let script = s.rank_script(0);
        assert_eq!(script.len(), 2);
        assert_eq!(script[0], (vec![(1, 4)], vec![2]));
        assert_eq!(script[1], (vec![], vec![1]));
    }

    #[test]
    fn strip_empty_rounds() {
        let mut s = Schedule::new(2, 1);
        s.push_round(vec![]);
        s.push_round(vec![Transfer {
            src: 0,
            dst: 1,
            bytes: 1,
        }]);
        let stripped = s.without_empty_rounds();
        assert_eq!(stripped.num_rounds(), 1);
    }
}

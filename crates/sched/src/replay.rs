//! Execute a static schedule on a live cluster.
//!
//! The replayer sends synthetic payloads of the scheduled sizes through
//! `bruck-net`, proving a plan is *executable* under the k-port model (not
//! just valid on paper) and measuring its virtual time with full
//! arrival-propagation semantics.

use bruck_net::cluster::{Cluster, ClusterConfig, RunOutput};
use bruck_net::endpoint::{RecvSpec, SendSpec};
use bruck_net::error::NetError;

use crate::schedule::Schedule;

/// Replay `schedule` on a cluster configured by `config`.
///
/// `config.n` and `config.ports` must match the schedule. Every rank walks
/// the schedule round by round, sending zero-filled payloads of the
/// scheduled sizes. Returns the run output; per-rank results are the
/// number of bytes each rank received.
///
/// # Errors
///
/// Any network error surfaced by the run.
///
/// # Panics
///
/// Panics if the config does not match the schedule dimensions.
pub fn replay_on_cluster(
    schedule: &Schedule,
    config: &ClusterConfig,
) -> Result<RunOutput<u64>, NetError> {
    assert_eq!(config.n, schedule.n, "config/schedule rank-count mismatch");
    assert_eq!(
        config.ports, schedule.ports,
        "config/schedule port mismatch"
    );
    Cluster::run(config, |ep| {
        let script = schedule.rank_script(ep.rank());
        let mut received = 0u64;
        for (round_idx, (sends, recvs)) in script.iter().enumerate() {
            let tag = round_idx as u64;
            let payloads: Vec<Vec<u8>> = sends
                .iter()
                .map(|&(_, bytes)| vec![0u8; bytes as usize])
                .collect();
            let send_specs: Vec<SendSpec<'_>> = sends
                .iter()
                .zip(&payloads)
                .map(|(&(dst, _), payload)| SendSpec {
                    to: dst,
                    tag,
                    payload,
                })
                .collect();
            let recv_specs: Vec<RecvSpec> = recvs
                .iter()
                .map(|&src| RecvSpec { from: src, tag })
                .collect();
            let msgs = ep.round(&send_specs, &recv_specs)?;
            received += msgs.iter().map(|m| m.len() as u64).sum::<u64>();
        }
        Ok(received)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{simulate_time, ScheduleStats};
    use crate::schedule::Transfer;
    use bruck_model::cost::LinearModel;
    use std::sync::Arc;

    fn shift_schedule(n: usize, shift: usize, bytes: u64) -> Schedule {
        let mut s = Schedule::new(n, 1);
        s.push_round(
            (0..n)
                .map(|r| Transfer {
                    src: r,
                    dst: (r + shift) % n,
                    bytes,
                })
                .collect(),
        );
        s
    }

    #[test]
    fn replay_moves_scheduled_bytes() {
        let s = shift_schedule(5, 2, 33);
        s.validate().unwrap();
        let cfg = ClusterConfig::new(5);
        let out = replay_on_cluster(&s, &cfg).unwrap();
        assert_eq!(out.results, vec![33; 5]);
        assert_eq!(
            out.metrics.global_complexity(),
            Some(ScheduleStats::of(&s).complexity)
        );
    }

    #[test]
    fn replayed_virtual_time_matches_simulation() {
        let mut s = shift_schedule(4, 1, 128);
        s.push_round(
            (0..4)
                .map(|r| Transfer {
                    src: r,
                    dst: (r + 3) % 4,
                    bytes: 16,
                })
                .collect(),
        );
        let model = LinearModel::sp1();
        let cfg = ClusterConfig::new(4).with_cost(Arc::new(model));
        let out = replay_on_cluster(&s, &cfg).unwrap();
        let sim = simulate_time(&s, &model);
        assert!(
            (out.virtual_makespan() - sim).abs() < 1e-12,
            "live {} vs sim {}",
            out.virtual_makespan(),
            sim
        );
    }

    #[test]
    fn replayed_trace_round_trips_to_same_schedule() {
        let s = shift_schedule(6, 1, 9);
        let cfg = ClusterConfig::new(6).with_trace();
        let out = replay_on_cluster(&s, &cfg).unwrap();
        let rebuilt = Schedule::from_trace(&out.trace.unwrap(), 6, 1);
        assert_eq!(rebuilt, s.without_empty_rounds());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dimension_mismatch_panics() {
        let s = shift_schedule(4, 1, 1);
        let cfg = ClusterConfig::new(5);
        let _ = replay_on_cluster(&s, &cfg);
    }
}

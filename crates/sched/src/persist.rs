//! Plain-text persistence for schedules.
//!
//! A schedule round-trips through a small TSV dialect so that offline
//! tools (spreadsheets, plotting scripts, diffing in code review) can
//! consume the exact communication patterns the library executes
//! (columns are tab-separated in the actual files):
//!
//! ```text
//! # bruck-schedule v1
//! n    8    ports    1
//! round    0
//! 0    1    16
//! 1    2    16
//! round    1
//! …
//! ```
//!
//! [`ChaosSchedule`]s get a sibling dialect (`# bruck-chaos v1`, one
//! event per line) so a soak failure's minimized reproducer can be
//! written to disk and replayed later with `bruckctl chaos --replay` —
//! see [`chaos_to_tsv`] / [`chaos_from_tsv`].

use bruck_net::{ChaosEvent, ChaosSchedule};

use crate::schedule::{Schedule, Transfer};

/// Serialize a schedule to the TSV dialect.
#[must_use]
pub fn to_tsv(schedule: &Schedule) -> String {
    let mut out = String::from("# bruck-schedule v1\n");
    out.push_str(&format!("n\t{}\tports\t{}\n", schedule.n, schedule.ports));
    for (i, round) in schedule.rounds.iter().enumerate() {
        out.push_str(&format!("round\t{i}\n"));
        for t in &round.transfers {
            out.push_str(&format!("{}\t{}\t{}\n", t.src, t.dst, t.bytes));
        }
    }
    out
}

/// Parse the TSV dialect back into a schedule.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn from_tsv(text: &str) -> Result<Schedule, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty input")?;
    if !header.starts_with("# bruck-schedule v1") {
        return Err(format!("bad header: {header}"));
    }
    let (_, dims) = lines.next().ok_or("missing dimensions line")?;
    let parts: Vec<&str> = dims.split('\t').collect();
    let [n_key, n_val, p_key, p_val] = parts.as_slice() else {
        return Err(format!("bad dimensions line: {dims}"));
    };
    if *n_key != "n" || *p_key != "ports" {
        return Err(format!("bad dimensions line: {dims}"));
    }
    let n: usize = n_val.parse().map_err(|e| format!("bad n: {e}"))?;
    let ports: usize = p_val.parse().map_err(|e| format!("bad ports: {e}"))?;
    let mut schedule = Schedule::new(n, ports);
    let mut current: Option<Vec<Transfer>> = None;
    for (lineno, line) in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["round", idx] => {
                if let Some(transfers) = current.take() {
                    schedule.push_round(transfers);
                }
                let expected = schedule.num_rounds();
                let got: usize = idx
                    .parse()
                    .map_err(|e| format!("line {lineno}: bad round index: {e}"))?;
                if got != expected {
                    return Err(format!(
                        "line {lineno}: round {got} out of order (expected {expected})"
                    ));
                }
                current = Some(Vec::new());
            }
            [src, dst, bytes] => {
                let t = Transfer {
                    src: src
                        .parse()
                        .map_err(|e| format!("line {lineno}: bad src: {e}"))?,
                    dst: dst
                        .parse()
                        .map_err(|e| format!("line {lineno}: bad dst: {e}"))?,
                    bytes: bytes
                        .parse()
                        .map_err(|e| format!("line {lineno}: bad bytes: {e}"))?,
                };
                current
                    .as_mut()
                    .ok_or(format!("line {lineno}: transfer before any round"))?
                    .push(t);
            }
            _ => return Err(format!("line {lineno}: unrecognized line: {line}")),
        }
    }
    if let Some(transfers) = current.take() {
        schedule.push_round(transfers);
    }
    Ok(schedule)
}

/// Serialize a chaos schedule to the TSV dialect (`# bruck-chaos v1`):
/// a header, a `seed … n …` dimensions line, then one event per line.
/// Rates ride as `f64` through `Display`, whose shortest-round-trip
/// output parses back bit-exact, so replaying a persisted reproducer
/// draws the identical wire-fault verdicts.
#[must_use]
pub fn chaos_to_tsv(schedule: &ChaosSchedule) -> String {
    let mut out = String::from("# bruck-chaos v1\n");
    out.push_str(&format!("seed\t{}\tn\t{}\n", schedule.seed, schedule.n));
    for e in &schedule.events {
        match e {
            ChaosEvent::Loss(r) => out.push_str(&format!("loss\t{r}\n")),
            ChaosEvent::Duplication(r) => out.push_str(&format!("dup\t{r}\n")),
            ChaosEvent::Corruption(r) => out.push_str(&format!("corrupt\t{r}\n")),
            ChaosEvent::Delay { rate, secs } => out.push_str(&format!("delay\t{rate}\t{secs}\n")),
            ChaosEvent::AckLoss(r) => out.push_str(&format!("ack-loss\t{r}\n")),
            ChaosEvent::Partition { side, round } => {
                let side: Vec<String> = side.iter().map(ToString::to_string).collect();
                out.push_str(&format!("partition\t{round}\t{}\n", side.join(",")));
            }
            ChaosEvent::Cut { src, dst, round } => {
                out.push_str(&format!("cut\t{src}\t{dst}\t{round}\n"));
            }
            ChaosEvent::Stall {
                rank,
                round,
                millis,
            } => out.push_str(&format!("stall\t{rank}\t{round}\t{millis}\n")),
            ChaosEvent::Kill { rank, round } => out.push_str(&format!("kill\t{rank}\t{round}\n")),
            ChaosEvent::Rejoin { rank } => out.push_str(&format!("rejoin\t{rank}\n")),
            ChaosEvent::ConnReset { src, dst, round } => {
                out.push_str(&format!("reset\t{src}\t{dst}\t{round}\n"));
            }
            ChaosEvent::HalfOpenStall {
                src,
                dst,
                round,
                millis,
            } => out.push_str(&format!("halfopen\t{src}\t{dst}\t{round}\t{millis}\n")),
            ChaosEvent::HandshakeDrop { src, dst, drops } => {
                out.push_str(&format!("hsdrop\t{src}\t{dst}\t{drops}\n"));
            }
            ChaosEvent::ReconnectFlap {
                src,
                dst,
                round,
                flaps,
            } => out.push_str(&format!("flap\t{src}\t{dst}\t{round}\t{flaps}\n")),
        }
    }
    out
}

/// Parse the chaos TSV dialect back into a [`ChaosSchedule`].
///
/// # Errors
///
/// A description of the first malformed line.
pub fn chaos_from_tsv(text: &str) -> Result<ChaosSchedule, String> {
    fn num<T: std::str::FromStr>(lineno: usize, what: &str, s: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        s.parse()
            .map_err(|e| format!("line {lineno}: bad {what}: {e}"))
    }
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty input")?;
    if !header.starts_with("# bruck-chaos v1") {
        return Err(format!("bad header: {header}"));
    }
    let (dims_no, dims) = lines.next().ok_or("missing dimensions line")?;
    let parts: Vec<&str> = dims.split('\t').collect();
    let [s_key, s_val, n_key, n_val] = parts.as_slice() else {
        return Err(format!("bad dimensions line: {dims}"));
    };
    if *s_key != "seed" || *n_key != "n" {
        return Err(format!("bad dimensions line: {dims}"));
    }
    let seed: u64 = num(dims_no, "seed", s_val)?;
    let n: usize = num(dims_no, "n", n_val)?;
    let mut events = Vec::new();
    for (lineno, line) in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        let event = match fields.as_slice() {
            ["loss", r] => ChaosEvent::Loss(num(lineno, "rate", r)?),
            ["dup", r] => ChaosEvent::Duplication(num(lineno, "rate", r)?),
            ["corrupt", r] => ChaosEvent::Corruption(num(lineno, "rate", r)?),
            ["delay", rate, secs] => ChaosEvent::Delay {
                rate: num(lineno, "rate", rate)?,
                secs: num(lineno, "secs", secs)?,
            },
            ["ack-loss", r] => ChaosEvent::AckLoss(num(lineno, "rate", r)?),
            ["partition", round, side] => ChaosEvent::Partition {
                round: num(lineno, "round", round)?,
                side: side
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| num(lineno, "side rank", s))
                    .collect::<Result<_, _>>()?,
            },
            ["cut", src, dst, round] => ChaosEvent::Cut {
                src: num(lineno, "src", src)?,
                dst: num(lineno, "dst", dst)?,
                round: num(lineno, "round", round)?,
            },
            ["stall", rank, round, millis] => ChaosEvent::Stall {
                rank: num(lineno, "rank", rank)?,
                round: num(lineno, "round", round)?,
                millis: num(lineno, "millis", millis)?,
            },
            ["kill", rank, round] => ChaosEvent::Kill {
                rank: num(lineno, "rank", rank)?,
                round: num(lineno, "round", round)?,
            },
            ["rejoin", rank] => ChaosEvent::Rejoin {
                rank: num(lineno, "rank", rank)?,
            },
            ["reset", src, dst, round] => ChaosEvent::ConnReset {
                src: num(lineno, "src", src)?,
                dst: num(lineno, "dst", dst)?,
                round: num(lineno, "round", round)?,
            },
            ["halfopen", src, dst, round, millis] => ChaosEvent::HalfOpenStall {
                src: num(lineno, "src", src)?,
                dst: num(lineno, "dst", dst)?,
                round: num(lineno, "round", round)?,
                millis: num(lineno, "millis", millis)?,
            },
            ["hsdrop", src, dst, drops] => ChaosEvent::HandshakeDrop {
                src: num(lineno, "src", src)?,
                dst: num(lineno, "dst", dst)?,
                drops: num(lineno, "drops", drops)?,
            },
            ["flap", src, dst, round, flaps] => ChaosEvent::ReconnectFlap {
                src: num(lineno, "src", src)?,
                dst: num(lineno, "dst", dst)?,
                round: num(lineno, "round", round)?,
                flaps: num(lineno, "flaps", flaps)?,
            },
            _ => return Err(format!("line {lineno}: unrecognized line: {line}")),
        };
        events.push(event);
    }
    Ok(ChaosSchedule { seed, n, events })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        let mut s = Schedule::new(4, 2);
        s.push_round(vec![
            Transfer {
                src: 0,
                dst: 1,
                bytes: 16,
            },
            Transfer {
                src: 2,
                dst: 3,
                bytes: 8,
            },
        ]);
        s.push_round(vec![]);
        s.push_round(vec![Transfer {
            src: 3,
            dst: 0,
            bytes: 1,
        }]);
        s
    }

    #[test]
    fn round_trip_preserves_schedule() {
        let s = sample();
        let text = to_tsv(&s);
        let back = from_tsv(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn header_is_checked() {
        assert!(from_tsv("nonsense\n").is_err());
        assert!(from_tsv("").is_err());
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let mut text = to_tsv(&sample());
        text.push_str("1\t2\n"); // two fields: invalid
        let err = from_tsv(&text).unwrap_err();
        assert!(err.contains("unrecognized"), "{err}");
    }

    #[test]
    fn out_of_order_rounds_rejected() {
        let text = "# bruck-schedule v1\nn\t2\tports\t1\nround\t1\n";
        assert!(from_tsv(text).unwrap_err().contains("out of order"));
    }

    #[test]
    fn transfer_before_round_rejected() {
        let text = "# bruck-schedule v1\nn\t2\tports\t1\n0\t1\t4\n";
        assert!(from_tsv(text).unwrap_err().contains("before any round"));
    }

    /// Pseudo-random valid schedules survive the text round trip exactly.
    /// Deterministic sweep over (n, rounds, seed) with a local xorshift —
    /// same coverage as a property test, no external runner needed.
    #[test]
    fn random_schedules_round_trip() {
        for n in 2usize..20 {
            for rounds in 0usize..8 {
                for seed in (0u64..10_000).step_by(997) {
                    let mut s = Schedule::new(n, 4);
                    let mut state = seed.wrapping_add(1);
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..rounds {
                        let count = (next() % 4) as usize;
                        let mut transfers = Vec::new();
                        for _ in 0..count {
                            let src = (next() % n as u64) as usize;
                            let dst = (src + 1 + (next() % (n as u64 - 1)) as usize) % n;
                            if transfers
                                .iter()
                                .any(|t: &Transfer| t.src == src && t.dst == dst)
                            {
                                continue;
                            }
                            transfers.push(Transfer {
                                src,
                                dst,
                                bytes: next() % 100_000,
                            });
                        }
                        s.push_round(transfers);
                    }
                    let back = from_tsv(&to_tsv(&s))
                        .unwrap_or_else(|e| panic!("n={n} rounds={rounds} seed={seed}: {e}"));
                    assert_eq!(back, s, "n={n} rounds={rounds} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn chaos_round_trip_preserves_every_event_kind() {
        let s = ChaosSchedule {
            seed: 0xDEAD_BEEF,
            n: 8,
            events: vec![
                ChaosEvent::Loss(0.03),
                ChaosEvent::Duplication(0.001),
                ChaosEvent::Corruption(0.1234567890123),
                ChaosEvent::Delay {
                    rate: 0.5,
                    secs: 1e-6,
                },
                ChaosEvent::AckLoss(0.25),
                ChaosEvent::Partition {
                    side: vec![0, 2, 5],
                    round: 3,
                },
                ChaosEvent::Cut {
                    src: 1,
                    dst: 6,
                    round: 0,
                },
                ChaosEvent::Stall {
                    rank: 4,
                    round: 2,
                    millis: 17,
                },
                ChaosEvent::Kill { rank: 7, round: 1 },
                ChaosEvent::Rejoin { rank: 7 },
                ChaosEvent::ConnReset {
                    src: 0,
                    dst: 5,
                    round: 2,
                },
                ChaosEvent::HalfOpenStall {
                    src: 3,
                    dst: 6,
                    round: 1,
                    millis: 12,
                },
                ChaosEvent::HandshakeDrop {
                    src: 2,
                    dst: 7,
                    drops: 64,
                },
                ChaosEvent::ReconnectFlap {
                    src: 1,
                    dst: 4,
                    round: 0,
                    flaps: 3,
                },
            ],
        };
        let back = chaos_from_tsv(&chaos_to_tsv(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn generated_socket_chaos_schedules_round_trip() {
        for seed in 0..256u64 {
            for n in [8usize, 16, 128] {
                let s = ChaosSchedule::generate_socket_chaos(seed, n);
                let back = chaos_from_tsv(&chaos_to_tsv(&s))
                    .unwrap_or_else(|e| panic!("seed {seed} n {n}: {e}"));
                assert_eq!(back, s, "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn generated_chaos_schedules_round_trip() {
        for seed in 0..256u64 {
            for n in [2usize, 4, 8, 16] {
                let s = ChaosSchedule::generate(seed, n);
                let back = chaos_from_tsv(&chaos_to_tsv(&s))
                    .unwrap_or_else(|e| panic!("seed={seed} n={n}: {e}"));
                assert_eq!(back, s, "seed={seed} n={n}");
            }
        }
    }

    #[test]
    fn chaos_malformed_lines_are_reported_with_position() {
        let mut text = chaos_to_tsv(&ChaosSchedule::generate(3, 4));
        text.push_str("kill\tseven\t1\n");
        let err = chaos_from_tsv(&text).unwrap_err();
        assert!(err.contains("bad rank"), "{err}");
        assert!(
            chaos_from_tsv("# bruck-schedule v1\n")
                .unwrap_err()
                .contains("bad header"),
            "schedule header must not pass for chaos"
        );
        assert!(chaos_from_tsv("# bruck-chaos v1\nseed\t1\n")
            .unwrap_err()
            .contains("bad dimensions"));
    }

    #[test]
    fn real_plans_round_trip() {
        // Use the text format on an actual algorithm plan.
        let mut s = Schedule::new(8, 1);
        for x in 0..3u32 {
            s.push_round(
                (0..8)
                    .map(|r| Transfer {
                        src: r,
                        dst: (r + (1 << x)) % 8,
                        bytes: 32,
                    })
                    .collect(),
            );
        }
        assert_eq!(from_tsv(&to_tsv(&s)).unwrap(), s);
    }
}

//! Human-readable schedule rendering: per-round transfer listings and an
//! ASCII traffic Gantt, for debugging algorithms and for the figure
//! harness's appendix output.

use crate::analyze::ScheduleStats;
use crate::schedule::Schedule;

/// Render one line per round: `round i [max B]: src→dst(bytes), …`.
#[must_use]
pub fn render_rounds(schedule: &Schedule) -> String {
    let mut out = String::new();
    for (i, round) in schedule.rounds.iter().enumerate() {
        out.push_str(&format!("round {i:>3} [{:>6} B max]:", round.max_bytes()));
        for t in &round.transfers {
            out.push_str(&format!(" {}→{}({})", t.src, t.dst, t.bytes));
        }
        out.push('\n');
    }
    out
}

/// Render a compact per-rank activity chart: one row per rank, one column
/// per round; `S` = sends only, `R` = receives only, `X` = both, `.` =
/// idle. Shows load balance and idle bubbles at a glance.
#[must_use]
pub fn render_activity(schedule: &Schedule) -> String {
    let rounds = schedule.rounds.len();
    let mut grid = vec![vec![b'.'; rounds]; schedule.n];
    for (i, round) in schedule.rounds.iter().enumerate() {
        for t in &round.transfers {
            let s = &mut grid[t.src][i];
            *s = if *s == b'R' || *s == b'X' { b'X' } else { b'S' };
            let r = &mut grid[t.dst][i];
            *r = if *r == b'S' || *r == b'X' { b'X' } else { b'R' };
        }
    }
    let mut out = String::new();
    for (rank, row) in grid.into_iter().enumerate() {
        out.push_str(&format!("rank {rank:>3} |"));
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// A one-paragraph textual summary of a schedule.
#[must_use]
pub fn summarize(schedule: &Schedule) -> String {
    let stats = ScheduleStats::of(schedule);
    format!(
        "{} ranks, {} ports, {} rounds; C2 = {} B; {} messages totalling {} B; \
         busiest rank sends {} B; largest message {} B",
        schedule.n,
        schedule.ports,
        schedule.num_rounds(),
        stats.complexity.c2,
        stats.total_msgs,
        stats.total_bytes,
        stats.max_rank_bytes,
        stats.max_message,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Transfer;

    fn sample() -> Schedule {
        let mut s = Schedule::new(3, 1);
        s.push_round(vec![Transfer {
            src: 0,
            dst: 1,
            bytes: 4,
        }]);
        s.push_round(vec![
            Transfer {
                src: 1,
                dst: 0,
                bytes: 8,
            },
            Transfer {
                src: 2,
                dst: 1,
                bytes: 2,
            },
        ]);
        s
    }

    #[test]
    fn rounds_listing() {
        let r = render_rounds(&sample());
        assert!(r.contains("round   0"));
        assert!(r.contains("0→1(4)"));
        assert!(r.contains("2→1(2)"));
        assert_eq!(r.lines().count(), 2);
    }

    #[test]
    fn activity_chart() {
        let a = render_activity(&sample());
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        // rank 0: sends round 0, receives round 1.
        assert!(lines[0].ends_with("SR"));
        // rank 1: receives round 0, sends+receives round 1.
        assert!(lines[1].ends_with("RX"));
        // rank 2: idle then sends.
        assert!(lines[2].ends_with(".S"));
    }

    #[test]
    fn summary_mentions_key_figures() {
        let s = summarize(&sample());
        assert!(s.contains("3 ranks"));
        assert!(s.contains("2 rounds"));
        assert!(s.contains("C2 = 12 B"));
        assert!(s.contains("3 messages"));
    }
}

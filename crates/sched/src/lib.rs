//! Static communication schedules.
//!
//! Every collective algorithm in this workspace exists in two forms: an
//! executable SPMD routine (real data moving through `bruck-net`) and a
//! **planner** that emits a [`Schedule`] — the full list of
//! `(round, src, dst, bytes)` transfers, independent of payload contents.
//!
//! Schedules make three things cheap:
//!
//! * **analysis** — `C1`, `C2`, total volume, per-round load, and
//!   predicted time under any cost model, without spawning threads
//!   ([`analyze::ScheduleStats`]);
//! * **validation** — port limits, distinct peers, self-send bans
//!   ([`Schedule::validate`]);
//! * **cross-checking** — a schedule reconstructed from a live trace
//!   ([`Schedule::from_trace`]) must equal the planned one, proving the
//!   executable and the analysis describe the same algorithm
//!   ([`replay`] runs the converse direction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod persist;
pub mod render;
pub mod replay;
pub mod schedule;

pub use analyze::ScheduleStats;
pub use persist::{chaos_from_tsv, chaos_to_tsv, from_tsv, to_tsv};
pub use render::{render_activity, render_rounds, summarize};
pub use replay::replay_on_cluster;
pub use schedule::{Round, Schedule, Transfer};

//! Hierarchical-plan bit-correctness across substrates — the dedicated
//! two-level executor on the threaded cluster and the lowered
//! [`IndexPlan::Hierarchical`] program on the event-driven TCP fabric —
//! at n = 16 and the paper's machine size n = 64, plus the
//! non-divisible `node_size` error paths.

use bruck::collectives::index::hierarchical;
use bruck::collectives::verify;
use bruck::model::planner::IndexPlan;
use bruck::net::{Cluster, ClusterConfig, NetError, Reliability, TcpScaleCluster};

fn scale_inputs(n: usize, block: usize) -> Vec<Vec<u8>> {
    (0..n).map(|r| verify::index_input(r, n, block)).collect()
}

fn assert_oracle(results: &[Vec<u8>], n: usize, block: usize, label: &str) {
    assert_eq!(results.len(), n, "{label}");
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(
            got,
            &verify::index_expected(rank, n, block),
            "{label} rank={rank}"
        );
    }
}

fn tcp_case(n: usize, node_size: usize, rl: usize, rr: usize, block: usize) {
    let plan = IndexPlan::Hierarchical {
        node_size,
        radix_local: rl,
        radix_remote: rr,
    };
    let cfg = ClusterConfig::new(n)
        .with_node_size(node_size)
        .with_reliability(Reliability::default());
    let inputs = scale_inputs(n, block);
    let workers = 3;
    let out = TcpScaleCluster::run_with_workers(&cfg, &plan, block, &inputs, Some(workers))
        .unwrap_or_else(|e| panic!("{} n={n}: {e}", plan.label()));
    assert_oracle(&out.results, n, block, &plan.label());
    // The multiplexing claim, end to end: worker pool + one reactor,
    // never a thread per rank.
    assert!(
        out.threads <= workers + 1,
        "{} n={n}: {} threads for {workers} workers",
        plan.label(),
        out.threads
    );
}

#[test]
fn tcp_hierarchical_plans_bit_correct_n16() {
    for (node_size, rl, rr) in [(2, 2, 2), (4, 2, 2), (4, 4, 4), (8, 2, 4)] {
        tcp_case(16, node_size, rl, rr, 3);
    }
}

#[test]
fn tcp_hierarchical_plans_bit_correct_n64() {
    // The paper's machine size, both a deep and a shallow factorization.
    for (node_size, rl, rr) in [(8, 2, 2), (16, 4, 2)] {
        tcp_case(64, node_size, rl, rr, 4);
    }
}

#[test]
fn threaded_hierarchical_executor_bit_correct_n64() {
    let (n, block, node_size) = (64, 2, 8);
    let out = Cluster::run(&ClusterConfig::new(n), |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        hierarchical::run(ep, &input, block, node_size, 2, 4)
    })
    .unwrap();
    assert_oracle(&out.results, n, block, "hierarchical::run n=64");
}

#[test]
fn executor_rejects_non_dividing_node_size() {
    // The dedicated executor's own guard in index/hierarchical.rs.
    let n = 16;
    let err = Cluster::run(&ClusterConfig::new(n), |ep| {
        let input = verify::index_input(ep.rank(), n, 2);
        hierarchical::run(ep, &input, 2, 5, 2, 2)
    })
    .unwrap_err();
    match err {
        NetError::App(msg) => assert!(msg.contains("not divisible"), "{msg}"),
        other => panic!("expected App error, got {other}"),
    }
}

#[test]
fn lowering_rejects_non_dividing_plan_node_size() {
    // Same guard one layer up: a Hierarchical *plan* whose node_size
    // does not partition the ranks must fail cleanly at lowering, not
    // wedge the scale executor.
    let n = 16;
    let plan = IndexPlan::Hierarchical {
        node_size: 5,
        radix_local: 2,
        radix_remote: 2,
    };
    let cfg = ClusterConfig::new(n).with_node_size(4);
    let err = TcpScaleCluster::run(&cfg, &plan, 2, &scale_inputs(n, 2)).unwrap_err();
    assert!(matches!(err, NetError::App(_)), "{err}");
}

#[test]
#[should_panic(expected = "must divide")]
fn config_rejects_non_dividing_topology_node_size() {
    // And the topology guard one layer earlier still: the config
    // builder refuses a node_size that cannot partition the ranks, so
    // a bad topology never reaches the fabric.
    let _ = ClusterConfig::new(16).with_node_size(6);
}

//! Property-based tests (proptest) over randomized parameters.

use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::collectives::verify;
use bruck::model::bounds::{concat_bounds, index_bounds};
use bruck::model::partition::{plan_last_round, Preference};
use bruck::model::tuning::{index_complexity, index_complexity_kport};
use bruck::net::{Cluster, ClusterConfig};
use bruck::sched::ScheduleStats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The Bruck index executor is correct for random (n, r, b, k).
    #[test]
    fn bruck_index_correct(n in 1usize..20, r in 2usize..24, b in 0usize..12, k in 1usize..4) {
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, b);
            IndexAlgorithm::BruckRadix(r).run(ep, &input, b)
        }).unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            prop_assert_eq!(result, &verify::index_expected(rank, n, b));
        }
    }

    /// The circulant concat executor is correct for random (n, b, k, pref).
    #[test]
    fn bruck_concat_correct(n in 1usize..24, b in 1usize..12, k in 1usize..5, bytes_pref: bool) {
        let pref = if bytes_pref { Preference::Bytes } else { Preference::Rounds };
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::concat_input(ep.rank(), b);
            ConcatAlgorithm::Bruck(pref).run(ep, &input)
        }).unwrap();
        let expected = verify::concat_expected(n, b);
        for result in &out.results {
            prop_assert_eq!(result, &expected);
        }
    }

    /// Planner schedules are always valid under the k-port model, and the
    /// closed-form complexity matches the schedule analyzer.
    #[test]
    fn index_plans_valid_and_consistent(n in 2usize..40, r in 2usize..40, b in 0usize..16, k in 1usize..5) {
        let s = IndexAlgorithm::BruckRadix(r).plan(n, b, k);
        prop_assert!(s.validate().is_ok());
        let stats = ScheduleStats::of(&s);
        prop_assert_eq!(stats.complexity, index_complexity_kport(n, r.min(n), b, k));
    }

    /// No index plan ever beats the §2 lower bounds.
    #[test]
    fn index_plans_respect_lower_bounds(n in 2usize..40, r in 2usize..40, b in 1usize..16, k in 1usize..5) {
        let s = IndexAlgorithm::BruckRadix(r).plan(n, b, k);
        let c = ScheduleStats::of(&s).complexity;
        let lb = index_bounds(n, k, b);
        prop_assert!(lb.admits(c), "r={} complexity {} beats bounds ({}, {})", r, c, lb.c1, lb.c2);
    }

    /// No concat plan ever beats the §2 lower bounds, and the circulant
    /// algorithm is round-optimal for every (n, k, b).
    #[test]
    fn concat_plans_respect_lower_bounds(n in 2usize..60, b in 1usize..16, k in 1usize..5) {
        let lb = concat_bounds(n, k, b);
        for algo in [ConcatAlgorithm::Bruck(Preference::Rounds), ConcatAlgorithm::GatherBroadcast] {
            let c = ScheduleStats::of(&algo.plan(n, b, k)).complexity;
            prop_assert!(lb.admits(c), "{} {} vs ({}, {})", algo.name(), c, lb.c1, lb.c2);
        }
        let c = ScheduleStats::of(&ConcatAlgorithm::Bruck(Preference::Rounds).plan(n, b, k)).complexity;
        prop_assert_eq!(c.c1, lb.c1);
    }

    /// The k-port grouping never hurts: complexity with k ports dominates
    /// complexity with k+1 ports in rounds, with identical total steps.
    #[test]
    fn more_ports_never_more_rounds(n in 2usize..40, r in 2usize..16, b in 1usize..8, k in 1usize..4) {
        let ck = index_complexity_kport(n, r, b, k);
        let ck1 = index_complexity_kport(n, r, b, k + 1);
        prop_assert!(ck1.c1 <= ck.c1);
        prop_assert!(ck1.c2 <= ck.c2);
    }

    /// One-port k-port formula degenerates to the §3.2 closed form.
    #[test]
    fn one_port_formulas_agree(n in 2usize..60, r in 2usize..60, b in 0usize..8) {
        prop_assert_eq!(index_complexity_kport(n, r, b, 1), index_complexity(n, r, b));
    }

    /// The last-round partitioner always covers the table exactly and
    /// never exceeds the §4 Remark costs.
    #[test]
    fn partition_always_valid(k in 1usize..6, d in 1u32..4, extra in 1usize..20, b in 1usize..8, bytes_pref: bool) {
        let n1 = (k + 1).pow(d);
        let n2 = 1 + (extra - 1) % (k * n1);
        let pref = if bytes_pref { Preference::Bytes } else { Preference::Rounds };
        let plan = plan_last_round(n1, n2, b, k, pref);
        prop_assert!(plan.validate().is_ok());
        let a = (b * n2).div_ceil(k) as u64;
        let c = plan.complexity();
        prop_assert!(c.c2 < a + b as u64, "c2 {} vs a {} + b {}", c.c2, a, b);
        prop_assert!(c.c1 <= 2);
    }

    /// Virtual time of a live run equals the closed-form prediction for
    /// the synchronous Bruck index schedule (linear model).
    #[test]
    fn virtual_time_matches_prediction(n in 2usize..12, r in 2usize..12, b in 0usize..64) {
        let model = bruck::model::cost::LinearModel::sp1();
        let cfg = ClusterConfig::new(n).with_cost(std::sync::Arc::new(model));
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, b);
            IndexAlgorithm::BruckRadix(r).run(ep, &input, b)
        }).unwrap();
        let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(r).plan(n, b, 1)).complexity;
        let predicted = c.linear_time(model.startup, model.per_byte);
        prop_assert!((out.virtual_makespan() - predicted).abs() < 1e-9,
            "virtual {} vs predicted {}", out.virtual_makespan(), predicted);
    }
}

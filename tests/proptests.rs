//! Property-style tests over pseudo-randomized parameters.
//!
//! Each property sweeps a fixed number of deterministic cases drawn from
//! a local xorshift generator — the same coverage shape as a property
//! test, but reproducible and dependency-free.

use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::collectives::verify;
use bruck::model::bounds::{concat_bounds, index_bounds};
use bruck::model::partition::{plan_last_round, Preference};
use bruck::model::tuning::{index_complexity, index_complexity_kport};
use bruck::net::{Cluster, ClusterConfig};
use bruck::sched::ScheduleStats;

/// Deterministic xorshift64 over half-open ranges.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(2654435761).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform-ish draw from `lo..hi`.
    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

const CASES: u64 = 64;

/// The Bruck index executor is correct for random (n, r, b, k).
#[test]
fn bruck_index_correct() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, r, b, k) = (g.pick(1, 20), g.pick(2, 24), g.pick(0, 12), g.pick(1, 4));
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, b);
            IndexAlgorithm::BruckRadix(r).run(ep, &input, b)
        })
        .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(
                result,
                &verify::index_expected(rank, n, b),
                "n={n} r={r} b={b} k={k}"
            );
        }
    }
}

/// The circulant concat executor is correct for random (n, b, k, pref).
#[test]
fn bruck_concat_correct() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, b, k) = (g.pick(1, 24), g.pick(1, 12), g.pick(1, 5));
        let pref = if g.flag() {
            Preference::Bytes
        } else {
            Preference::Rounds
        };
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::concat_input(ep.rank(), b);
            ConcatAlgorithm::Bruck(pref).run(ep, &input)
        })
        .unwrap();
        let expected = verify::concat_expected(n, b);
        for result in &out.results {
            assert_eq!(result, &expected, "n={n} b={b} k={k} pref={pref:?}");
        }
    }
}

/// Planner schedules are always valid under the k-port model, and the
/// closed-form complexity matches the schedule analyzer.
#[test]
fn index_plans_valid_and_consistent() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, r, b, k) = (g.pick(2, 40), g.pick(2, 40), g.pick(0, 16), g.pick(1, 5));
        let s = IndexAlgorithm::BruckRadix(r).plan(n, b, k);
        assert!(s.validate().is_ok(), "n={n} r={r} b={b} k={k}");
        let stats = ScheduleStats::of(&s);
        assert_eq!(stats.complexity, index_complexity_kport(n, r.min(n), b, k));
    }
}

/// No index plan ever beats the §2 lower bounds.
#[test]
fn index_plans_respect_lower_bounds() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, r, b, k) = (g.pick(2, 40), g.pick(2, 40), g.pick(1, 16), g.pick(1, 5));
        let s = IndexAlgorithm::BruckRadix(r).plan(n, b, k);
        let c = ScheduleStats::of(&s).complexity;
        let lb = index_bounds(n, k, b);
        assert!(
            lb.admits(c),
            "r={r} complexity {c} beats bounds ({}, {})",
            lb.c1,
            lb.c2
        );
    }
}

/// No concat plan ever beats the §2 lower bounds, and the circulant
/// algorithm is round-optimal for every (n, k, b).
#[test]
fn concat_plans_respect_lower_bounds() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, b, k) = (g.pick(2, 60), g.pick(1, 16), g.pick(1, 5));
        let lb = concat_bounds(n, k, b);
        for algo in [
            ConcatAlgorithm::Bruck(Preference::Rounds),
            ConcatAlgorithm::GatherBroadcast,
        ] {
            let c = ScheduleStats::of(&algo.plan(n, b, k)).complexity;
            assert!(
                lb.admits(c),
                "{} {} vs ({}, {})",
                algo.name(),
                c,
                lb.c1,
                lb.c2
            );
        }
        let c =
            ScheduleStats::of(&ConcatAlgorithm::Bruck(Preference::Rounds).plan(n, b, k)).complexity;
        assert_eq!(c.c1, lb.c1, "n={n} b={b} k={k}");
    }
}

/// The k-port grouping never hurts: complexity with k ports dominates
/// complexity with k+1 ports in rounds, with identical total steps.
#[test]
fn more_ports_never_more_rounds() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, r, b, k) = (g.pick(2, 40), g.pick(2, 16), g.pick(1, 8), g.pick(1, 4));
        let ck = index_complexity_kport(n, r, b, k);
        let ck1 = index_complexity_kport(n, r, b, k + 1);
        assert!(ck1.c1 <= ck.c1, "n={n} r={r} b={b} k={k}");
        assert!(ck1.c2 <= ck.c2, "n={n} r={r} b={b} k={k}");
    }
}

/// One-port k-port formula degenerates to the §3.2 closed form.
#[test]
fn one_port_formulas_agree() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, r, b) = (g.pick(2, 60), g.pick(2, 60), g.pick(0, 8));
        assert_eq!(
            index_complexity_kport(n, r, b, 1),
            index_complexity(n, r, b),
            "n={n} r={r}"
        );
    }
}

/// The last-round partitioner always covers the table exactly and
/// never exceeds the §4 Remark costs.
#[test]
fn partition_always_valid() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (k, d, extra, b) = (
            g.pick(1, 6),
            g.pick(1, 4) as u32,
            g.pick(1, 20),
            g.pick(1, 8),
        );
        let n1 = (k + 1).pow(d);
        let n2 = 1 + (extra - 1) % (k * n1);
        let pref = if g.flag() {
            Preference::Bytes
        } else {
            Preference::Rounds
        };
        let plan = plan_last_round(n1, n2, b, k, pref);
        assert!(plan.validate().is_ok(), "k={k} d={d} n2={n2} b={b}");
        let a = (b * n2).div_ceil(k) as u64;
        let c = plan.complexity();
        assert!(c.c2 < a + b as u64, "c2 {} vs a {} + b {}", c.c2, a, b);
        assert!(c.c1 <= 2, "k={k} d={d} n2={n2} b={b}");
    }
}

/// Virtual time of a live run equals the closed-form prediction for
/// the synchronous Bruck index schedule (linear model).
#[test]
fn virtual_time_matches_prediction() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, r, b) = (g.pick(2, 12), g.pick(2, 12), g.pick(0, 64));
        let model = bruck::model::cost::LinearModel::sp1();
        let cfg = ClusterConfig::new(n).with_cost(std::sync::Arc::new(model));
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, b);
            IndexAlgorithm::BruckRadix(r).run(ep, &input, b)
        })
        .unwrap();
        let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(r).plan(n, b, 1)).complexity;
        let predicted = c.linear_time(model.startup, model.per_byte);
        assert!(
            (out.virtual_makespan() - predicted).abs() < 1e-9,
            "virtual {} vs predicted {} (n={n} r={r} b={b})",
            out.virtual_makespan(),
            predicted
        );
    }
}

//! End-to-end virtual-time semantics of every cost model on the live
//! cluster: the paper's linear model and the cited postal/LogP
//! alternatives, plus the hierarchical extension.

use std::sync::Arc;

use bruck::model::cost::{
    CostModel, HierarchicalModel, LinearModel, LogPModel, PostalModel, Sp1Model,
};
use bruck::net::{Cluster, ClusterConfig};

/// One synchronous ring round with `m`-byte messages; returns the common
/// virtual completion time.
fn ring_round_time(model: Arc<dyn CostModel>, n: usize, m: usize) -> f64 {
    let cfg = ClusterConfig::new(n).with_cost(model);
    let out = Cluster::run(&cfg, |ep| {
        let right = (ep.rank() + 1) % ep.size();
        let left = (ep.rank() + ep.size() - 1) % ep.size();
        ep.send_and_recv(right, &vec![0u8; m], left, 0)?;
        Ok(ep.virtual_time())
    })
    .unwrap();
    let t = out.results[0];
    for &x in &out.results {
        assert!((x - t).abs() < 1e-15, "ring round should be symmetric");
    }
    t
}

#[test]
fn linear_round_is_beta_plus_m_tau() {
    let t = ring_round_time(Arc::new(LinearModel::new(10e-6, 1e-8)), 6, 500);
    assert!((t - (10e-6 + 500.0 * 1e-8)).abs() < 1e-15);
}

#[test]
fn postal_round_is_lambda_times_injection() {
    // Delivery completes λ injection-times after the send begins: the
    // receiver (who is also sending) finishes at λ·s(m).
    let wire = LinearModel::new(5e-6, 1e-8);
    let lambda = 3.0;
    let t = ring_round_time(Arc::new(PostalModel::new(wire, lambda)), 5, 200);
    let s = 5e-6 + 200.0 * 1e-8;
    assert!(
        (t - lambda * s).abs() < 1e-15,
        "t = {t}, expected {}",
        lambda * s
    );
}

#[test]
fn logp_round_charges_both_overheads_and_latency() {
    let (l, o, g, big_g) = (7e-6, 2e-6, 3e-6, 1e-8);
    let m = 100usize;
    let t = ring_round_time(Arc::new(LogPModel::new(l, o, g, big_g)), 4, m);
    // sender busy o + max(g, mG); arrival l later; receiver pays o.
    let expected = o + f64::max(g, m as f64 * big_g) + l + o;
    assert!((t - expected).abs() < 1e-15, "t = {t}, expected {expected}");
}

#[test]
fn sp1_gamma_factors_inflate_the_round() {
    let base = ring_round_time(Arc::new(LinearModel::sp1()), 4, 256);
    let inflated = ring_round_time(Arc::new(Sp1Model::calibrated()), 4, 256);
    let expected = 1.5 * 29e-6 + 2.0 * 256.0 * 0.12e-6;
    assert!((inflated - expected).abs() < 1e-12);
    assert!(inflated > base);
}

#[test]
fn hierarchical_round_is_paced_by_remote_links() {
    // Ring over 2 nodes × 2 ranks: every rank either sends or receives
    // across the node boundary, so the whole round runs at remote speed.
    let h = HierarchicalModel::smp_cluster(2);
    let m = 128usize;
    let t = ring_round_time(Arc::new(h), 4, m);
    let remote = LinearModel::sp1();
    let expected = remote.startup + m as f64 * remote.per_byte;
    assert!((t - expected).abs() < 1e-12, "t = {t}, expected {expected}");
}

#[test]
fn hierarchical_local_only_ring_is_fast() {
    // A ring entirely inside one node runs at local speed.
    let h = HierarchicalModel::smp_cluster(4);
    let m = 128usize;
    let t = ring_round_time(Arc::new(h), 4, m);
    let local = LinearModel::new(1e-6, 1e-9);
    let expected = local.startup + m as f64 * local.per_byte;
    assert!((t - expected).abs() < 1e-15, "t = {t}, expected {expected}");
}

#[test]
fn copy_cost_charges_only_configured_models() {
    let plain = Sp1Model::calibrated();
    let copying = Sp1Model::calibrated().with_copy_per_byte(0.05e-6);
    let run = |model: Arc<dyn CostModel>| {
        let cfg = ClusterConfig::new(4).with_cost(model);
        Cluster::run(&cfg, |ep| {
            let input = bruck::collectives::verify::index_input(ep.rank(), 4, 64);
            bruck::collectives::index::bruck::run(ep, &input, 64, 2)?;
            Ok(ep.virtual_time())
        })
        .unwrap()
        .virtual_makespan()
    };
    let t_plain = run(Arc::new(plain));
    let t_copy = run(Arc::new(copying));
    assert!(
        t_copy > t_plain,
        "copy model must charge the pack/rotate work"
    );
}

#[test]
fn postal_latency_overlaps_across_ranks() {
    // A relay chain 0→1→2 with postal latency: rank 2's completion is the
    // sum of both deliveries (no magic overlap for dependent messages).
    let wire = LinearModel::new(1e-6, 0.0);
    let lambda = 4.0;
    let cfg = ClusterConfig::new(3).with_cost(Arc::new(PostalModel::new(wire, lambda)));
    let out = Cluster::run(&cfg, |ep| {
        match ep.rank() {
            0 => {
                ep.round(
                    &[bruck::net::SendSpec {
                        to: 1,
                        tag: 0,
                        payload: &[9],
                    }],
                    &[],
                )?;
            }
            1 => {
                let m = ep.round(&[], &[bruck::net::RecvSpec { from: 0, tag: 0 }])?;
                ep.round(
                    &[bruck::net::SendSpec {
                        to: 2,
                        tag: 1,
                        payload: &m[0].payload,
                    }],
                    &[],
                )?;
            }
            _ => {
                ep.idle_round()?;
                ep.round(&[], &[bruck::net::RecvSpec { from: 1, tag: 1 }])?;
            }
        }
        Ok(ep.virtual_time())
    })
    .unwrap();
    // Delivery 0→1 completes at 4 µs; rank 1's send departs at 5 µs and
    // delivers at 4+4 = 8 µs.
    assert!(
        (out.results[2] - 8e-6).abs() < 1e-15,
        "rank 2 at {}",
        out.results[2]
    );
}

//! Event-driven TCP fabric integration: fault-injection smoke over the
//! real loopback streams (the ARQ + watchdog stack must behave exactly
//! as it does on the other transports) and the multiplexing claim at
//! n = 128.

use std::time::Duration;

use bruck::collectives::verify;
use bruck::model::planner::IndexPlan;
use bruck::net::{ClusterConfig, FaultPlan, Reliability, TcpScaleCluster};

fn scale_inputs(n: usize, block: usize) -> Vec<Vec<u8>> {
    (0..n).map(|r| verify::index_input(r, n, block)).collect()
}

fn assert_oracle(results: &[Vec<u8>], n: usize, block: usize, label: &str) {
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(
            got,
            &verify::index_expected(rank, n, block),
            "{label} rank={rank}"
        );
    }
}

#[test]
fn lossy_delayed_tcp_loopback_stays_bit_correct() {
    // The same FaultPlan the channel and UDS chaos suites use, riding
    // on the TCP fabric: injected loss and delay must surface as
    // retransmits, never as wrong bytes or a hang.
    let (n, node_size, block) = (16, 4, 8);
    let faults = FaultPlan::new()
        .with_seed(0xB10C)
        .with_loss(0.05)
        .with_delay(0.05, 2e-4);
    let cfg = ClusterConfig::new(n)
        .with_node_size(node_size)
        .with_reliability(Reliability::default())
        .with_timeout(Duration::from_secs(60))
        .with_deadline(Duration::from_secs(120))
        .with_faults(faults);
    let inputs = scale_inputs(n, block);
    let out = TcpScaleCluster::run(&cfg, &IndexPlan::Radix(2), block, &inputs)
        .unwrap_or_else(|e| panic!("lossy tcp run: {e}"));
    assert_oracle(&out.results, n, block, "lossy tcp");
    let link = out.metrics.link_totals();
    assert!(
        link.injected_losses + link.injected_delays > 0,
        "fault plan injected nothing: {link:?}"
    );
    assert!(
        link.retransmits > 0,
        "losses were injected but the ARQ never retransmitted: {link:?}"
    );
}

#[test]
fn lossy_tcp_matches_faultless_run() {
    // Same shape with and without faults: identical results, so the
    // recovery machinery is invisible to the payload.
    let (n, node_size, block) = (12, 3, 5);
    let inputs = scale_inputs(n, block);
    let plan = IndexPlan::Hierarchical {
        node_size,
        radix_local: 3,
        radix_remote: 2,
    };
    let base_cfg = ClusterConfig::new(n)
        .with_node_size(node_size)
        .with_reliability(Reliability::default())
        .with_timeout(Duration::from_secs(60));
    let clean = TcpScaleCluster::run(&base_cfg, &plan, block, &inputs).unwrap();
    let lossy_cfg = base_cfg
        .clone()
        .with_faults(FaultPlan::new().with_seed(7).with_loss(0.08));
    let lossy = TcpScaleCluster::run(&lossy_cfg, &plan, block, &inputs).unwrap();
    assert_eq!(clean.results, lossy.results);
    assert_oracle(&clean.results, n, block, "clean hier tcp");
}

#[test]
fn n128_multiplexes_hundreds_of_ranks_onto_a_handful_of_threads() {
    let (n, node_size, block) = (128, 32, 8);
    let inputs = scale_inputs(n, block);
    let workers = 4;
    for plan in [
        IndexPlan::Radix(2),
        IndexPlan::Hierarchical {
            node_size,
            radix_local: 2,
            radix_remote: 2,
        },
    ] {
        let cfg = ClusterConfig::new(n)
            .with_node_size(node_size)
            .with_reliability(Reliability::default())
            .with_timeout(Duration::from_secs(120))
            .with_deadline(Duration::from_secs(300));
        let out = TcpScaleCluster::run_with_workers(&cfg, &plan, block, &inputs, Some(workers))
            .unwrap_or_else(|e| panic!("{} n=128: {e}", plan.label()));
        assert_oracle(&out.results, n, block, &plan.label());
        assert_eq!(out.workers, workers, "{}", plan.label());
        assert!(
            out.threads <= workers + 1,
            "{}: {} threads for {n} ranks — the pool leaked",
            plan.label(),
            out.threads
        );
    }
}

//! The self-tuning planner stack, end to end: the planner's arg-min
//! against an exhaustive search, the calibrator's parameter recovery,
//! and planner-dispatched collectives on live clusters.

use std::sync::Arc;

use bruck::collectives::api::{alltoall_auto, Tuning};
use bruck::collectives::autotune::{calibrated_fit, clear_cache};
use bruck::collectives::verify;
use bruck::model::calibrate::Calibrator;
use bruck::model::complexity::Complexity;
use bruck::model::cost::{CostModel, LinearModel};
use bruck::model::planner::{IndexPlan, Planner};
use bruck::model::tuning::index_complexity_kport;
use bruck::net::{Cluster, ClusterConfig};

/// Deterministic xorshift64 over half-open ranges.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(2654435761).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// Property: over random `(β, τ, n, b, k)`, [`Planner::plan_index`]
/// never predicts worse than the exhaustive arg-min of `C1·β + C2·τ`
/// over the uniform radix family plus the direct exchange and the
/// hypercube — and when it picks a uniform radix, its cost *equals* that
/// arg-min.
#[test]
fn planner_matches_exhaustive_argmin_over_radix_family() {
    const CASES: u64 = 200;
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let n = g.in_range(2, 65) as usize;
        let b = 1usize << g.in_range(0, 18);
        let k = g.in_range(1, 4) as usize;
        // β from 1µs to 1ms, τ from 0.1ns to 1µs per byte.
        let beta = 1e-6 * 10f64.powi(g.in_range(0, 4) as i32);
        let tau = 1e-10 * 10f64.powi(g.in_range(0, 5) as i32);
        let model = LinearModel::new(beta, tau);

        let mut exhaustive = f64::INFINITY;
        for r in 2..=n {
            let c = index_complexity_kport(n, r, b, k);
            exhaustive = exhaustive.min(model.estimate(c));
        }
        // Direct has the same complexity as radix n; the hypercube (when
        // it applies) the same as radix 2 — neither can beat the family
        // minimum, so `exhaustive` is the bar for the whole family.
        let choice = Planner::new(&model).plan_index(n, k, b);
        assert!(
            choice.predicted_time <= exhaustive * (1.0 + 1e-12) + f64::MIN_POSITIVE,
            "seed {seed}: planner {:?} predicts {} but exhaustive minimum is {exhaustive} \
             (n={n} b={b} k={k} β={beta} τ={tau})",
            choice.plan,
            choice.predicted_time,
        );
        match &choice.plan {
            IndexPlan::Mixed(_) => {
                // A mixed plan is adopted only on a strict win.
                assert!(choice.predicted_time < exhaustive, "seed {seed}");
            }
            plan => {
                let r = plan.radix(n).expect("uniform plans have a radix");
                let c = index_complexity_kport(n, r, b, k);
                assert!(
                    (model.estimate(c) - exhaustive).abs() <= exhaustive * 1e-12,
                    "seed {seed}: chosen radix {r} is not the arg-min (n={n} b={b} k={k})"
                );
            }
        }
    }
}

/// The calibrator recovers known `(β, τ)` from clean synthetic samples
/// with `R² ≥ 0.99`.
#[test]
fn calibration_recovers_parameters() {
    let (beta, tau) = (40e-6, 2e-9);
    let mut cal = Calibrator::new();
    let mut g = Gen::new(7);
    for i in 0..40 {
        let c1 = 1 + i % 7;
        let c2 = 64u64 << (i % 11);
        // ±1% multiplicative noise keeps the fit honest but recoverable.
        let noise = 1.0 + (g.in_range(0, 2001) as f64 - 1000.0) / 100_000.0;
        let t = (c1 as f64 * beta + c2 as f64 * tau) * noise;
        cal.record_run(Complexity::new(c1, c2), t);
    }
    let fit = cal.fit();
    assert!(
        fit.r_squared >= 0.99,
        "R² = {} below 0.99 on near-clean samples",
        fit.r_squared
    );
    assert!(
        (fit.model.startup - beta).abs() / beta < 0.05,
        "β recovered as {} (true {beta})",
        fit.model.startup
    );
    assert!(
        (fit.model.per_byte - tau).abs() / tau < 0.05,
        "τ recovered as {} (true {tau})",
        fit.model.per_byte
    );
}

/// Smoke: planner dispatch picks a valid, correct schedule at every
/// small shape, with the model fitted live against the cluster's own
/// transport.
#[test]
fn autotune_smoke_planner_dispatch_is_correct() {
    clear_cache();
    for n in [4usize, 8, 16] {
        for k in [1usize, 2] {
            for block in [16usize, 1024] {
                let cfg = ClusterConfig::new(n).with_ports(k);
                let out = Cluster::run(&cfg, |ep| {
                    let fit = calibrated_fit(ep)?;
                    let input = verify::index_input(ep.rank(), n, block);
                    let (got, choice) = alltoall_auto(ep, &input, block, &fit.model)?;
                    Ok((got, choice.plan.label()))
                })
                .unwrap();
                let mut labels = Vec::new();
                for (rank, (got, label)) in out.results.iter().enumerate() {
                    assert_eq!(
                        got,
                        &verify::index_expected(rank, n, block),
                        "n={n} k={k} b={block} rank={rank} plan={label}"
                    );
                    labels.push(label.clone());
                }
                // Collective consistency: every rank must have dispatched
                // the same plan, or the rounds could not have matched.
                assert!(
                    labels.windows(2).all(|w| w[0] == w[1]),
                    "n={n} k={k} b={block}: ranks disagree on the plan: {labels:?}"
                );
            }
        }
    }
}

/// `Tuning::auto` routes the public `alltoall` through the same planner.
#[test]
fn tuning_auto_matches_direct_planner_choice() {
    let model: Arc<dyn CostModel> = Arc::new(LinearModel::sp1());
    let tuning = Tuning::auto(Arc::clone(&model));
    for n in [5usize, 8, 12] {
        for block in [1usize, 512, 1 << 16] {
            let via_tuning = tuning.chosen_plan(n, block, 2);
            let direct = Planner::new(model.as_ref()).plan_index(n, 2, block);
            assert_eq!(via_tuning.plan, direct.plan, "n={n} b={block}");
            assert_eq!(via_tuning.complexity, direct.complexity);
        }
    }
}

/// The planner's concat closed form agrees with the executable
/// schedule's stats for the plan it picks.
#[test]
fn planner_concat_complexity_matches_schedule() {
    use bruck::collectives::concat::ConcatAlgorithm;
    use bruck::model::planner::ConcatPlan;
    use bruck::sched::ScheduleStats;

    let model = LinearModel::sp1();
    for n in [2usize, 5, 8, 13, 27] {
        for k in [1usize, 2, 3] {
            for b in [1usize, 64, 4096] {
                let planner = Planner::new(&model);
                let choice = planner.plan_concat(n, k, b);
                let schedule = match &choice.plan {
                    ConcatPlan::Bruck(pref) => ConcatAlgorithm::Bruck(*pref).plan(n, b, k),
                    ConcatPlan::Ring => ConcatAlgorithm::Ring.plan(n, b, k),
                };
                let stats = ScheduleStats::of(&schedule);
                assert_eq!(
                    stats.complexity,
                    choice.complexity,
                    "n={n} k={k} b={b} plan={}",
                    choice.plan.label()
                );
            }
        }
    }
}

//! Property suite for the non-uniform family: whatever the per-pair
//! size matrix looks like — uniform, randomly ragged, zero-riddled, or
//! one hot destination — the direct, padded, and two-phase members and
//! the planner-dispatched auto path must deliver bit-exact identical
//! results, and the family must survive rank death under
//! `run_resilient`.

use std::time::Duration;

use bruck::collectives::api::Tuning;
use bruck::collectives::verify;
use bruck::collectives::vops::{alltoallv_auto_into, alltoallv_into, VLayout, VMethod};
use bruck::model::cost::LinearModel;
use bruck::net::{Cluster, ClusterConfig, FaultPlan};

/// Deterministic xorshift64 over half-open ranges.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(2654435761).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo)
    }
}

/// A seeded size matrix mixing ragged, zero-length, and hot-spot rows.
fn random_matrix(g: &mut Gen, n: usize) -> Vec<usize> {
    let shape = g.pick(0, 3);
    let hot = g.pick(0, n.max(1));
    (0..n * n)
        .map(|idx| {
            let (i, j) = (idx / n, idx % n);
            match shape {
                // Ragged with zeros: about a third of the pairs empty.
                0 => {
                    if g.pick(0, 3) == 0 {
                        0
                    } else {
                        g.pick(1, 60)
                    }
                }
                // Single hot destination: everyone floods rank `hot`.
                1 => {
                    if j == hot {
                        g.pick(200, 400)
                    } else {
                        g.pick(0, 4)
                    }
                }
                // Mild per-pair raggedness, no zeros.
                _ => 8 + (i * 7 + j * 13) % 24,
            }
        })
        .collect()
}

fn expected_recv(matrix: &[usize], n: usize, rank: usize) -> Vec<u8> {
    let mut want = Vec::new();
    for src in 0..n {
        want.extend((0..matrix[src * n + rank]).map(|t| verify::content_byte(src, rank, t)));
    }
    want
}

fn flat_input(matrix: &[usize], n: usize, rank: usize) -> (Vec<u8>, VLayout) {
    let counts: Vec<usize> = matrix[rank * n..(rank + 1) * n].to_vec();
    let layout = VLayout::from_counts(&counts);
    let mut flat = vec![0u8; layout.total()];
    for j in 0..n {
        for (t, byte) in flat[layout.range(j)].iter_mut().enumerate() {
            *byte = verify::content_byte(rank, j, t);
        }
    }
    (flat, layout)
}

/// Every family member and the auto path agree bit-exactly on random
/// ragged/zero/hot matrices across the PR's shape grid.
#[test]
fn all_members_agree_on_random_matrices() {
    let methods: [Option<VMethod>; 4] = [
        Some(VMethod::Direct),
        Some(VMethod::Padded { radix: 2 }),
        Some(VMethod::TwoPhase {
            radix: 3,
            quota: None,
        }),
        None, // planner dispatch
    ];
    for &n in &[1usize, 2, 5, 8, 16] {
        for &k in &[1usize, 2] {
            for seed in 0..4u64 {
                let mut g = Gen::new(seed * 1000 + (n * 10 + k) as u64);
                let matrix = random_matrix(&mut g, n);
                for method in methods {
                    let cfg = ClusterConfig::new(n).with_ports(k);
                    let matrix_ref = &matrix;
                    let out = Cluster::run(&cfg, move |ep| {
                        let (flat, layout) = flat_input(matrix_ref, n, ep.rank());
                        let mut got = Vec::new();
                        match method {
                            Some(m) => {
                                let tuning = Tuning::builder().vmethod(m).build();
                                alltoallv_into(ep, &flat, &layout, &tuning, &mut got)?;
                            }
                            None => {
                                let model = LinearModel::sp1();
                                alltoallv_auto_into(ep, &flat, &layout, &model, &mut got)?;
                            }
                        }
                        Ok(got)
                    })
                    .unwrap();
                    for (rank, got) in out.results.iter().enumerate() {
                        assert_eq!(
                            got,
                            &expected_recv(&matrix, n, rank),
                            "n={n} k={k} seed={seed} method={method:?} rank={rank}"
                        );
                    }
                }
            }
        }
    }
}

/// Forcing an explicit two-phase quota (including degenerate extremes
/// that collapse to direct or padded) never changes the bytes.
#[test]
fn explicit_quotas_cover_the_degenerate_ends() {
    let n = 8;
    let mut g = Gen::new(77);
    let matrix = random_matrix(&mut g, n);
    for quota in [0usize, 1, 16, usize::MAX] {
        let cfg = ClusterConfig::new(n).with_ports(2);
        let matrix_ref = &matrix;
        let out = Cluster::run(&cfg, move |ep| {
            let (flat, layout) = flat_input(matrix_ref, n, ep.rank());
            let tuning = Tuning::builder()
                .vmethod(VMethod::TwoPhase {
                    radix: 2,
                    quota: Some(quota),
                })
                .build();
            let mut got = Vec::new();
            alltoallv_into(ep, &flat, &layout, &tuning, &mut got)?;
            Ok(got)
        })
        .unwrap();
        for (rank, got) in out.results.iter().enumerate() {
            assert_eq!(
                got,
                &expected_recv(&matrix, n, rank),
                "quota={quota} rank={rank}"
            );
        }
    }
}

/// The returned receive layout addresses the output buffer correctly
/// even when most blocks are empty.
#[test]
fn receive_layout_matches_announced_sizes() {
    let n = 5;
    // Only rank 2 receives anything.
    let matrix: Vec<usize> = (0..n * n)
        .map(|idx| if idx % n == 2 { 9 } else { 0 })
        .collect();
    let cfg = ClusterConfig::new(n).with_ports(2);
    let matrix_ref = &matrix;
    let out = Cluster::run(&cfg, move |ep| {
        let (flat, layout) = flat_input(matrix_ref, n, ep.rank());
        let mut got = Vec::new();
        let recv = alltoallv_into(ep, &flat, &layout, &Tuning::default(), &mut got)?;
        Ok((got, recv))
    })
    .unwrap();
    for (rank, (got, recv)) in out.results.iter().enumerate() {
        assert_eq!(recv.len(), n);
        assert_eq!(recv.total(), got.len());
        for src in 0..n {
            let want = if rank == 2 { 9 } else { 0 };
            assert_eq!(recv.count(src), want, "rank={rank} src={src}");
        }
    }
}

/// A fault-injected skewed exchange: a rank dies mid-collective, the
/// cluster shrinks, and the survivors re-run the skewed alltoallv to a
/// clean bit-exact result (sizes derived from the dense survivor size).
#[test]
fn skewed_exchange_survives_rank_death() {
    let n = 6;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(4, 1));
    let resilient = Cluster::run_resilient(&cfg, 3, |ep, view| {
        // Rebuild the skewed matrix for the dense survivor count: one
        // hot destination (dense rank 0), trickles elsewhere.
        let m = ep.size();
        let matrix: Vec<usize> = (0..m * m)
            .map(|idx| if idx % m == 0 { 120 } else { 3 })
            .collect();
        let (flat, layout) = flat_input(&matrix, m, ep.rank());
        let tuning = Tuning::builder()
            .vmethod(VMethod::TwoPhase {
                radix: 2,
                quota: None,
            })
            .build();
        let mut got = Vec::new();
        alltoallv_into(ep, &flat, &layout, &tuning, &mut got)?;
        Ok((view.attempt, got, matrix))
    })
    .unwrap();
    assert_eq!(resilient.survivors, vec![0, 1, 2, 3, 5]);
    let m = resilient.survivors.len();
    for (dense, (attempt, got, matrix)) in resilient.output.results.iter().enumerate() {
        assert_eq!(*attempt, 1, "success must come from the retry attempt");
        assert_eq!(got, &expected_recv(matrix, m, dense), "dense={dense}");
    }
}

//! The executed algorithms and their planners describe the same
//! communication: the trace of a live run, rebuilt into a schedule, must
//! equal the planner's schedule; the live metrics must match the
//! analyzer; and the replayer must accept every plan.

use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::collectives::verify;
use bruck::model::partition::Preference;
use bruck::net::{Cluster, ClusterConfig};
use bruck::sched::{replay_on_cluster, Schedule, ScheduleStats};

fn check_index(algo: IndexAlgorithm, n: usize, b: usize, k: usize) {
    let cfg = ClusterConfig::new(n).with_ports(k).with_trace();
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, b);
        algo.run(ep, &input, b)
    })
    .unwrap_or_else(|e| panic!("{} n={n} b={b} k={k}: {e}", algo.name()));
    let plan = algo.plan(n, b, k);
    plan.validate()
        .unwrap_or_else(|e| panic!("{} invalid plan: {e}", algo.name()));
    let traced = Schedule::from_trace(&out.trace.unwrap(), n, k);
    assert_eq!(
        traced,
        plan.without_empty_rounds(),
        "{} n={n} b={b} k={k}: executed ≠ planned",
        algo.name()
    );
    assert_eq!(
        out.metrics.global_complexity().unwrap(),
        ScheduleStats::of(&plan).complexity,
        "{} n={n} b={b} k={k}",
        algo.name()
    );
}

fn check_concat(algo: ConcatAlgorithm, n: usize, b: usize, k: usize) {
    let cfg = ClusterConfig::new(n).with_ports(k).with_trace();
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), b);
        algo.run(ep, &input)
    })
    .unwrap_or_else(|e| panic!("{} n={n} b={b} k={k}: {e}", algo.name()));
    let plan = algo.plan(n, b, k);
    plan.validate()
        .unwrap_or_else(|e| panic!("{} invalid plan: {e}", algo.name()));
    let traced = Schedule::from_trace(&out.trace.unwrap(), n, k);
    assert_eq!(
        traced,
        plan.without_empty_rounds(),
        "{} n={n} b={b} k={k}: executed ≠ planned",
        algo.name()
    );
}

#[test]
fn index_bruck_trace_equals_plan() {
    for &(n, b, k) in &[
        (5usize, 3usize, 1usize),
        (8, 1, 1),
        (13, 4, 2),
        (16, 2, 3),
        (27, 2, 2),
    ] {
        for r in [2usize, 3, 5, n] {
            check_index(IndexAlgorithm::BruckRadix(r), n, b, k);
        }
    }
}

#[test]
fn index_baselines_trace_equals_plan() {
    check_index(IndexAlgorithm::Direct, 9, 3, 1);
    check_index(IndexAlgorithm::Direct, 10, 3, 3);
    check_index(IndexAlgorithm::Pairwise, 8, 2, 1);
    check_index(IndexAlgorithm::Pairwise, 16, 2, 2);
    check_index(IndexAlgorithm::Hypercube, 8, 2, 1);
}

#[test]
fn concat_trace_equals_plan() {
    for &(n, b, k) in &[
        (5usize, 1usize, 1usize),
        (16, 4, 1),
        (9, 3, 2),
        (10, 3, 3),
        (21, 5, 4),
        (3, 2, 5),
    ] {
        check_concat(ConcatAlgorithm::Bruck(Preference::Rounds), n, b, k);
        check_concat(ConcatAlgorithm::Bruck(Preference::Bytes), n, b, k);
        check_concat(ConcatAlgorithm::GatherBroadcast, n, b, k);
    }
    check_concat(ConcatAlgorithm::Ring, 7, 2, 1);
    check_concat(ConcatAlgorithm::RecursiveDoubling, 8, 2, 1);
}

#[test]
fn every_plan_replays_on_a_live_cluster() {
    let plans = vec![
        IndexAlgorithm::BruckRadix(3).plan(10, 8, 1),
        IndexAlgorithm::BruckRadix(4).plan(9, 8, 3),
        IndexAlgorithm::Direct.plan(7, 8, 2),
        ConcatAlgorithm::Bruck(Preference::Rounds).plan(10, 3, 3),
        ConcatAlgorithm::GatherBroadcast.plan(12, 4, 1),
    ];
    for plan in plans {
        let cfg = ClusterConfig::new(plan.n).with_ports(plan.ports);
        let out = replay_on_cluster(&plan, &cfg).expect("replay failed");
        assert_eq!(
            out.metrics.global_complexity().unwrap(),
            ScheduleStats::of(&plan).complexity
        );
    }
}

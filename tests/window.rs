//! Sliding-window reliability: property coverage.
//!
//! The window protocol's contract is the same as stop-and-wait's —
//! exactly-once, in-order, bit-identical delivery per link — it just
//! keeps more frames in flight. These tests drive randomized
//! loss/duplication/delay interleavings (below the retry cap) through
//! random window shapes and assert the contract holds, plus the
//! `window = 1` backward-compat escape hatch and the idle-endpoint
//! no-retry regression for the blocking-read socket transport.
//! Fault plans draw from the same dependency-free xorshift generator as
//! `tests/proptests.rs`, so every case replays from its seed.

use std::time::Duration;

use bruck::collectives::api::{alltoall, Tuning};
use bruck::collectives::verify;
use bruck::net::{Cluster, ClusterConfig, FaultPlan, Reliability, WireTuning};

/// Deterministic xorshift64 over half-open ranges.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(2654435761).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// A rate in `[0, max)`.
    fn rate(&mut self, max: f64) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * max
    }
}

/// A random window shape: any window in `[1, 12]`, any sack budget,
/// piggybacking on or off.
fn random_wire(g: &mut Gen) -> WireTuning {
    WireTuning::default()
        .with_window(g.pick(1, 13))
        .with_sack_limit(g.pick(0, 9))
        .with_piggyback(g.flag())
}

/// A loss/duplication/delay plan mild enough that the retry cap is never
/// the binding constraint — the window must *heal*, not fail cleanly.
fn lossy_plan(g: &mut Gen) -> FaultPlan {
    let mut plan = FaultPlan::new().with_seed(g.next());
    if g.flag() {
        plan = plan.with_loss(g.rate(0.15));
    }
    if g.flag() {
        plan = plan.with_duplication(g.rate(0.15));
    }
    if g.flag() {
        plan = plan.with_delay(g.rate(0.2), 1e-5);
    }
    plan
}

/// The round-stamped payload rank `src` sends in round `round`.
fn stamped(src: usize, round: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (src as u8) ^ (round as u8).wrapping_mul(31) ^ (i as u8))
        .collect()
}

/// Any interleaving of loss, duplication, and delay below the retry cap
/// delivers bit-identical payloads *in order* per link: a ring exchange
/// stamps every payload with its round, so a reordered, duplicated, or
/// corrupted delivery shows up as a stamp mismatch in some round.
#[test]
fn lossy_window_delivers_in_order_per_link() {
    for seed in 0..24u64 {
        let mut g = Gen::new(0x51D0 ^ seed);
        let n = g.pick(2, 6);
        let rounds = g.pick(6, 16);
        let len = g.pick(1, 64);
        let cfg = ClusterConfig::new(n)
            .with_timeout(Duration::from_secs(10))
            .with_faults(lossy_plan(&mut g))
            .with_reliability(Reliability::default().with_wire(random_wire(&mut g)));
        Cluster::run(&cfg, |ep| {
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            for round in 0..rounds {
                let out = stamped(ep.rank(), round, len);
                let got = ep.send_and_recv(right, &out, left, 3)?;
                assert_eq!(
                    got,
                    stamped(left, round, len),
                    "seed {seed}: rank {} round {round} out-of-order or corrupt",
                    ep.rank()
                );
                ep.recycle(got);
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("seed {seed} (n={n}): {e:?}"));
    }
}

/// Random window shapes under full wire chaos (corruption included):
/// alltoall stays bit-correct for every window in `[1, 12]`.
#[test]
fn random_windows_survive_chaos_alltoall() {
    for seed in 0..16u64 {
        let mut g = Gen::new(0xD00F ^ seed);
        let n = g.pick(2, 9);
        let block = g.pick(1, 25);
        let plan = lossy_plan(&mut g).with_corruption(g.rate(0.08));
        let wire = random_wire(&mut g);
        let cfg = ClusterConfig::new(n)
            .with_timeout(Duration::from_secs(10))
            .with_faults(plan)
            .with_reliability(Reliability::default().with_wire(wire));
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, block);
            alltoall(ep, &input, block, &Tuning::default())
        })
        .unwrap_or_else(|e| panic!("seed {seed} (n={n} b={block} wire={wire:?}): {e:?}"));
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(
                result,
                &verify::index_expected(rank, n, block),
                "seed {seed}: alltoall corrupted at rank {rank} (wire={wire:?})"
            );
        }
    }
}

/// `window = 1` reproduces stop-and-wait: never more than one unacked
/// frame per link (mean occupancy exactly 1) and no piggybacked acks —
/// the backward-compatible escape hatch still behaves like the old
/// discipline, lossy wire included.
#[test]
fn window_one_is_stop_and_wait() {
    let n = 4;
    let block = 16;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(10))
        .with_faults(FaultPlan::new().with_seed(7).with_loss(0.05))
        .with_reliability(Reliability::default().with_wire(WireTuning::stop_and_wait()));
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        alltoall(ep, &input, block, &Tuning::default())
    })
    .unwrap();
    for (rank, result) in out.results.iter().enumerate() {
        assert_eq!(result, &verify::index_expected(rank, n, block));
    }
    let link = out.metrics.link_totals();
    assert!(link.window_samples > 0, "occupancy was never sampled");
    assert_eq!(
        link.window_occupancy_sum, link.window_samples,
        "window=1 must never pipeline"
    );
    assert_eq!(link.piggyback_acks, 0, "piggybacking is off in compat mode");
}

/// With the default window and a bidirectional two-rank exchange, acks
/// ride on reverse-path data frames instead of costing dedicated frames.
#[test]
fn bidirectional_exchange_piggybacks_acks() {
    let cfg = ClusterConfig::new(2)
        .with_timeout(Duration::from_secs(10))
        .with_reliability(Reliability {
            // A roomy rto keeps the delayed-ack budget (rto/8) far above
            // the round time, so owed acks wait for the next data frame.
            rto: Duration::from_millis(100),
            ..Reliability::default()
        });
    let out = Cluster::run(&cfg, |ep| {
        let peer = 1 - ep.rank();
        for round in 0..20 {
            let msg = stamped(ep.rank(), round, 32);
            let got = ep.send_and_recv(peer, &msg, peer, 5)?;
            assert_eq!(got, stamped(peer, round, 32));
            ep.recycle(got);
        }
        Ok(())
    })
    .unwrap();
    let link = out.metrics.link_totals();
    assert!(
        link.piggyback_acks > 0,
        "no acks piggybacked across 20 bidirectional rounds: {link:?}"
    );
    assert_eq!(link.retransmits, 0, "clean wire must not retransmit");
}

/// Regression for the socket transport's blocking reads: an endpoint
/// that sits idle (parked in a kernel read, nothing in flight) must not
/// burn retransmissions or retry budget — the old 50µs sleep-poll loop
/// is gone and patience is now free.
#[cfg(unix)]
#[test]
fn idle_endpoint_burns_no_retries() {
    use bruck::net::SocketCluster;
    let n = 2;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(10))
        .with_reliability(Reliability::default());
    let out = SocketCluster::run(&cfg, |ep| {
        // A shared quiet period with zero frames in flight: every rank is
        // idle at once, so any timer that fires here is a protocol bug.
        std::thread::sleep(Duration::from_millis(60));
        let peer = 1 - ep.rank();
        for round in 0..5 {
            let msg = stamped(ep.rank(), round, 64);
            let got = ep.send_and_recv(peer, &msg, peer, 9)?;
            assert_eq!(got, stamped(peer, round, 64));
            ep.recycle(got);
        }
        Ok(())
    })
    .unwrap();
    let link = out.metrics.link_totals();
    assert_eq!(
        link.retransmits, 0,
        "idle endpoint burned retry budget: {link:?}"
    );
    assert!(
        link.acks_sent + link.piggyback_acks > 0,
        "reliability layer was not exercised"
    );
}

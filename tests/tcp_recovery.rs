//! Fault-tolerant TCP fabric: connection healing, node-level eviction,
//! and socket-level chaos — the recovery lifecycle on the scale path.
//!
//! Three contracts:
//!
//! * a stream killed mid-collective reconnects (jittered backoff,
//!   re-handshake) and the run completes bit-correct, byte-for-byte
//!   equal to a faultless run, with `reconnects > 0` in the fabric
//!   stats;
//! * a pair whose reconnect budget is exhausted (handshake blackhole)
//!   raises a *node-level* eviction with a cluster-consistent
//!   `RanksFailed` verdict, and `run_resilient` shrinks by whole nodes
//!   and completes dense on the survivors;
//! * a seeded connection-chaos soak at n = 128 over real TCP loopback:
//!   every surviving rank bit-correct, every view consistent, failures
//!   persist a minimized TSV reproducer for `bruckctl chaos --replay`.

use std::time::{Duration, Instant};

use bruck::collectives::verify;
use bruck::model::planner::IndexPlan;
use bruck::net::{
    ChaosSchedule, ClusterConfig, FaultPlan, NetError, RecoveryPolicy, Reliability,
    ScaleResilientOutput, TcpScaleCluster,
};

fn scale_inputs(n: usize, block: usize) -> Vec<Vec<u8>> {
    (0..n).map(|r| verify::index_input(r, n, block)).collect()
}

fn assert_oracle(results: &[Vec<u8>], n: usize, block: usize, label: &str) {
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(
            got,
            &verify::index_expected(rank, n, block),
            "{label} rank={rank}"
        );
    }
}

/// Check a resilient run's dense survivor results against the original
/// input matrix: survivor `i`'s slot `j` must hold the block original
/// rank `survivors[j]` addressed to original rank `survivors[i]`.
/// Returns the first violation.
fn dense_violation(res: &ScaleResilientOutput, inputs: &[Vec<u8>], block: usize) -> Option<String> {
    let m = res.survivors.len();
    if res.output.results.len() != m {
        return Some(format!(
            "{} results for {m} survivors",
            res.output.results.len()
        ));
    }
    for (i, got) in res.output.results.iter().enumerate() {
        if got.len() != m * block {
            return Some(format!(
                "survivor {i}: {} bytes, want {}",
                got.len(),
                m * block
            ));
        }
        for (j, &src) in res.survivors.iter().enumerate() {
            let dst = res.survivors[i];
            let want = &inputs[src][dst * block..(dst + 1) * block];
            if &got[j * block..(j + 1) * block] != want {
                return Some(format!(
                    "survivor {i} (orig {dst}) slot {j} (orig {src}): wrong bytes"
                ));
            }
        }
    }
    None
}

fn base_cfg(n: usize, node_size: usize) -> ClusterConfig {
    ClusterConfig::new(n)
        .with_node_size(node_size)
        .with_reliability(Reliability::default())
        .with_timeout(Duration::from_secs(60))
        .with_deadline(Duration::from_secs(120))
}

/// `BRUCK_SCALE_MAX_N` caps the sizes the eviction matrix covers
/// (mirrors the scale bench's cap so CI boxes stay fast).
fn scale_cap() -> usize {
    std::env::var("BRUCK_SCALE_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// Tentpole contract 1: kill a node pair's streams mid-collective via
/// an injected reset (plus a flapping link elsewhere); the fabric must
/// reconnect and finish bit-correct, byte-for-byte equal to the
/// faultless run.
#[test]
fn injected_reset_heals_and_matches_faultless() {
    let (n, node_size, block) = (16, 4, 8);
    let inputs = scale_inputs(n, block);
    let plan = IndexPlan::Hierarchical {
        node_size,
        radix_local: 2,
        radix_remote: 2,
    };
    // Reset the node-0↔node-2 stream after the first round; flap the
    // node-1↔node-3 stream (reset at round 1, once more after healing).
    let faults = FaultPlan::new()
        .with_conn_reset(0, 2 * node_size, 1)
        .with_reconnect_flap(node_size, 3 * node_size, 1, 1);
    let faulted_cfg = base_cfg(n, node_size).with_faults(faults);
    let faulted =
        TcpScaleCluster::run_with_workers(&faulted_cfg, &plan, block, &inputs, Some(4)).unwrap();
    assert_oracle(&faulted.results, n, block, "healed");

    let clean_cfg = base_cfg(n, node_size);
    let clean =
        TcpScaleCluster::run_with_workers(&clean_cfg, &plan, block, &inputs, Some(4)).unwrap();
    assert_eq!(
        faulted.results, clean.results,
        "a healed run must equal the faultless run byte-for-byte"
    );

    let fs = faulted.metrics.fabric;
    assert!(fs.reconnects > 0, "healing must reconnect: {fs:?}");
    assert!(fs.link_failures > 0, "{fs:?}");
    assert!(
        fs.injected_resets >= 2,
        "one reset + one flap (2 teardowns minimum): {fs:?}"
    );
    assert_eq!(fs.pairs_evicted, 0, "healed links must not evict: {fs:?}");
    let cs = clean.metrics.fabric;
    assert_eq!(
        (cs.link_failures, cs.reconnects),
        (0, 0),
        "faultless run saw phantom outages: {cs:?}"
    );
}

/// Tentpole contract 2: a handshake blackhole exhausts the reconnect
/// budget → the pair is declared dead → the whole victim node is
/// evicted with one cluster-consistent `RanksFailed` verdict, at
/// n ∈ {128, 256}.
#[test]
fn budget_exhausted_eviction_is_node_level_and_consistent() {
    for n in [128usize, 256] {
        if n > scale_cap() {
            continue;
        }
        let node_size = 32;
        let block = 4;
        let inputs = scale_inputs(n, block);
        // Reset the node-0↔node-1 stream at round 0 and blackhole every
        // reconnect handshake: budget (6) exhausts, node 1 (the pair
        // end with the higher id) is evicted.
        let faults = FaultPlan::new()
            .with_conn_reset(0, node_size, 0)
            .with_handshake_drops(0, node_size, 64);
        let victim: Vec<usize> = (node_size..2 * node_size).collect();

        let cfg = base_cfg(n, node_size).with_faults(faults.clone());
        let err =
            TcpScaleCluster::run_with_workers(&cfg, &IndexPlan::Radix(2), block, &inputs, Some(4))
                .unwrap_err();
        let NetError::RanksFailed { ranks } = &err else {
            panic!("n={n}: want RanksFailed, got {err:?}");
        };
        assert!(
            victim.iter().all(|r| ranks.contains(r)),
            "n={n}: victim node ranks missing from verdict {ranks:?}"
        );
        assert!(
            ranks.iter().all(|r| victim.contains(r)),
            "n={n}: verdict bled past the victim node: {ranks:?}"
        );

        // The resilient driver turns the same verdict into a whole-node
        // shrink and completes dense on the survivors.
        let cfg = base_cfg(n, node_size).with_faults(faults);
        let res = TcpScaleCluster::run_resilient_with_workers(
            &cfg,
            &IndexPlan::Radix(2),
            block,
            &inputs,
            3,
            Some(4),
        )
        .unwrap_or_else(|e| panic!("n={n}: resilient run failed: {e:?}"));
        assert_eq!(res.attempts, 2, "n={n}");
        let expect: Vec<usize> = (0..n).filter(|r| !victim.contains(r)).collect();
        assert_eq!(res.survivors, expect, "n={n}");
        assert!(
            res.survivors.len().is_multiple_of(node_size),
            "n={n}: eviction must keep whole nodes"
        );
        if let Some(v) = dense_violation(&res, &inputs, block) {
            panic!("n={n}: {v}");
        }
        let fs = res.output.metrics.fabric;
        assert!(fs.pairs_evicted >= 1, "n={n}: {fs:?}");
        assert!(fs.injected_handshake_drops >= 6, "n={n}: {fs:?}");
        assert!(fs.reconnect_failures >= 6, "n={n}: {fs:?}");
        let ms = res.output.metrics.membership;
        assert_eq!(ms.evictions as usize, node_size, "n={n}");
    }
}

/// `BRUCK_CHAOS_SEED` narrows the soak to one seed for replaying a CI
/// failure; unset, the full range runs.
fn soak_seeds() -> std::ops::Range<u64> {
    match std::env::var("BRUCK_CHAOS_SEED") {
        Ok(s) => {
            let seed: u64 = s
                .parse()
                .unwrap_or_else(|e| panic!("BRUCK_CHAOS_SEED={s}: {e}"));
            seed..seed + 1
        }
        Err(_) => 0..SOAK_SEEDS,
    }
}

const SOAK_SEEDS: u64 = 100;

/// Longest one schedule may take before it counts as a hang: the
/// per-op timeout never fires on a healthy heal, so a run is bounded
/// by reconnect backoff + retransmission, well under this.
const HANG_BUDGET: Duration = Duration::from_secs(30);

/// Persist a failing schedule for `bruckctl chaos --transport tcp
/// --replay` (best effort — the panic message is the primary artifact).
fn persist_reproducer(s: &ChaosSchedule, label: &str) -> String {
    let path = format!("target/chaos-repro-{label}-n{}-seed{}.tsv", s.n, s.seed);
    match std::fs::write(&path, bruck::sched::chaos_to_tsv(s)) {
        Ok(()) => path,
        Err(e) => format!("<unwritable {path}: {e}>"),
    }
}

/// Run one connection-chaos schedule through the resilient scale
/// driver and check every recovery invariant. `None` means clean.
fn run_conn_schedule(s: &ChaosSchedule) -> Option<String> {
    let (node_size, block) = (32, 4);
    let inputs = scale_inputs(s.n, block);
    let cfg = ClusterConfig::new(s.n)
        .with_node_size(node_size)
        .with_reliability(Reliability::default())
        .with_timeout(Duration::from_secs(20))
        .with_deadline(Duration::from_secs(25))
        .with_faults(s.plan())
        .with_recovery(RecoveryPolicy::ShrinkOnly);
    let started = Instant::now();
    let outcome = TcpScaleCluster::run_resilient_with_workers(
        &cfg,
        &IndexPlan::Radix(2),
        block,
        &inputs,
        3,
        Some(4),
    );
    if started.elapsed() > HANG_BUDGET {
        return Some(format!(
            "no-hang: run took {:?} (budget {HANG_BUDGET:?})",
            started.elapsed()
        ));
    }
    match outcome {
        Ok(res) => {
            // Bit-correctness across the survivor view.
            if let Some(v) = dense_violation(&res, &inputs, block) {
                return Some(format!("bit-correctness: {v}"));
            }
            // Whole-node eviction keeps the survivor set node-aligned.
            if !res.survivors.len().is_multiple_of(node_size) && res.survivors.len() >= node_size {
                return Some(format!(
                    "membership: {} survivors not node-aligned",
                    res.survivors.len()
                ));
            }
            // View bookkeeping agrees with itself.
            let ms = res.output.metrics.membership;
            if ms.view_changes != ms.evictions + ms.rejoins {
                return Some(format!(
                    "counters: {} view changes ≠ {} evictions + {} rejoins",
                    ms.view_changes, ms.evictions, ms.rejoins
                ));
            }
            if res.attempts > 1 && ms.evictions == 0 {
                return Some("counters: a retry without an eviction".into());
            }
            None
        }
        // Structured verdicts (attempts exhausted, quorum) are allowed
        // soak outcomes; hangs and wrong bytes are not.
        Err(NetError::RanksFailed { .. } | NetError::Killed { .. }) => None,
        Err(e) => Some(format!("verdict: unexpected error {e:?}")),
    }
}

/// The connection-chaos soak: seeded socket-level schedules (resets,
/// flaps, half-open stalls, handshake blackholes, mild loss) at
/// n = 128 over real TCP loopback. Zero tolerance; failures persist a
/// minimized reproducer TSV.
#[test]
fn connection_chaos_soak_heals_or_shrinks_consistently() {
    let n = 128.min(scale_cap());
    for seed in soak_seeds() {
        let schedule = ChaosSchedule::generate_socket_chaos(seed, n);
        if let Some(reason) = run_conn_schedule(&schedule) {
            let minimized = schedule.minimized(|c| run_conn_schedule(c).is_some());
            let path = persist_reproducer(&minimized, "tcp-conn");
            panic!(
                "connection-chaos violation at seed {seed}, n {n}: {reason}\n\
                 minimized reproducer written to {path}\n\
                 replay with: cargo run -p bruck-bench --bin bruckctl -- \
                 chaos --transport tcp --replay {path}\n{minimized}"
            );
        }
    }
}

//! Optimality and trade-off tests: the §2 lower bounds against every
//! planner, the §3.3 special cases, Theorem 2.5/2.6's compound trade-off,
//! and Theorem 4.3's concatenation optimality.

use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::model::bounds::{
    concat_bounds, index_bounds, index_c1_bound_when_transfer_optimal,
    index_c2_bound_when_round_optimal, index_c2_omega_when_logarithmic,
};
use bruck::model::partition::Preference;
use bruck::model::radix::ceil_log;
use bruck::sched::ScheduleStats;

/// §3.3 case 1: r = 2 is round-optimal for every n.
#[test]
fn index_r2_is_round_optimal() {
    for n in 2..200 {
        let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(2).plan(n, 3, 1)).complexity;
        assert_eq!(c.c1, u64::from(ceil_log(2, n)), "n={n}");
        // And within the factor the paper states: C2 ≤ b·⌈n/2⌉·⌈log2 n⌉.
        assert!(c.c2 <= (3 * n.div_ceil(2)) as u64 * c.c1);
    }
}

/// §3.3 case 2: r = n is transfer-optimal for every n.
#[test]
fn index_rn_is_transfer_optimal() {
    for n in 2..200 {
        let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(n).plan(n, 3, 1)).complexity;
        let lb = index_bounds(n, 1, 3);
        assert_eq!(c.c2, lb.c2, "n={n}");
        assert_eq!(c.c1, (n - 1) as u64);
    }
}

/// §3.4: r = k+1 is round-optimal in the k-port model.
#[test]
fn index_r_kplus1_round_optimal_kport() {
    for k in 1..6 {
        for n in 2..100 {
            let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(k + 1).plan(n, 2, k)).complexity;
            assert_eq!(c.c1, index_bounds(n, k, 2).c1, "n={n} k={k}");
        }
    }
}

/// Theorem 2.5: any round-optimal index algorithm moves
/// ≥ b·n·log_{k+1}(n)/(k+1) data when n is a power of k+1 — and the
/// radix-(k+1) algorithm meets this compound bound exactly.
#[test]
fn theorem_2_5_compound_bound_met_exactly() {
    for k in 1usize..4 {
        for d in 1u32..4 {
            let n = (k + 1).pow(d);
            if n < 2 {
                continue;
            }
            let b = 4;
            let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(k + 1).plan(n, b, k)).complexity;
            let compound = index_c2_bound_when_round_optimal(n, k, b);
            assert_eq!(c.c1, u64::from(d), "round-optimal n={n} k={k}");
            assert_eq!(
                c.c2, compound,
                "radix-(k+1) should meet the compound bound exactly: n={n} k={k}"
            );
        }
    }
}

/// Theorem 2.6: the transfer-optimal algorithms (direct / r = n) use
/// exactly the forced ⌈(n-1)/k⌉ rounds.
#[test]
fn theorem_2_6_transfer_optimal_rounds_forced() {
    for k in 1..5 {
        for n in [8usize, 17, 40] {
            let c = ScheduleStats::of(&IndexAlgorithm::Direct.plan(n, 2, k)).complexity;
            assert_eq!(
                c.c1,
                index_c1_bound_when_transfer_optimal(n, k),
                "n={n} k={k}"
            );
        }
    }
}

/// Theorem 2.9's shape: every logarithmic-round one-port index plan moves
/// Ω(b·n·log n); the r = 2 plan satisfies the concrete witness bound.
#[test]
fn theorem_2_9_omega_witness() {
    for d in 3..9u32 {
        let n = 1usize << d;
        let b = 2;
        let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(2).plan(n, b, 1)).complexity;
        let witness = index_c2_omega_when_logarithmic(n, b, 1.0);
        assert!(
            c.c2 as f64 >= witness,
            "n={n}: C2 {} below the Ω witness {witness}",
            c.c2
        );
    }
}

/// The trade-off is real: across radices, C1 and C2 move in opposite
/// directions, and no radix beats both extremes simultaneously.
#[test]
fn radix_tradeoff_pareto() {
    let n = 64;
    let b = 8;
    let r2 = ScheduleStats::of(&IndexAlgorithm::BruckRadix(2).plan(n, b, 1)).complexity;
    let rn = ScheduleStats::of(&IndexAlgorithm::BruckRadix(n).plan(n, b, 1)).complexity;
    for r in 3..n {
        let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(r).plan(n, b, 1)).complexity;
        assert!(c.c1 >= r2.c1, "r={r}");
        assert!(c.c2 >= rn.c2, "r={r}");
    }
}

/// Theorem 4.3: the circulant concatenation attains both §2 bounds
/// simultaneously for every (n, b) with k ≤ 2, and for k ≥ 3 outside the
/// exception range; inside it the two fallbacks cost what the §4 Remark
/// says.
#[test]
fn theorem_4_3_concat_optimality_sweep() {
    let mut exceptions = 0usize;
    for k in 1usize..=5 {
        for n in 2..=160 {
            for b in [1usize, 3, 5] {
                let lb = concat_bounds(n, k, b);
                let rounds =
                    ScheduleStats::of(&ConcatAlgorithm::Bruck(Preference::Rounds).plan(n, b, k))
                        .complexity;
                let bytes =
                    ScheduleStats::of(&ConcatAlgorithm::Bruck(Preference::Bytes).plan(n, b, k))
                        .complexity;
                assert!(lb.admits(rounds) && lb.admits(bytes), "n={n} k={k} b={b}");
                // The Rounds plan is always round-optimal.
                assert_eq!(rounds.c1, lb.c1, "n={n} k={k} b={b}");
                if n > k + 1 {
                    // Outside the trivial range, C2 is optimal or within
                    // b-1 of it (exception range only).
                    assert!(rounds.c2 < lb.c2 + b as u64, "n={n} k={k} b={b}: {rounds}");
                    if rounds.c2 != lb.c2 {
                        exceptions += 1;
                        assert!(
                            k >= 3 && b >= 3,
                            "exception outside the paper's range: n={n} k={k} b={b}"
                        );
                        // The Bytes fallback then restores C2 at +1 round
                        // (when its geometry permits).
                        if bytes.c1 == lb.c1 + 1 {
                            assert_eq!(bytes.c2, lb.c2, "n={n} k={k} b={b}");
                        }
                    }
                }
            }
        }
    }
    assert!(
        exceptions > 0,
        "the exception range should appear in this sweep"
    );
}

/// The folklore gather+broadcast is suboptimal in both measures (the §4
/// motivation) — strictly, for n ≥ 4.
#[test]
fn folklore_concat_strictly_suboptimal() {
    for n in [4usize, 9, 16, 40] {
        let c = ScheduleStats::of(&ConcatAlgorithm::GatherBroadcast.plan(n, 4, 1)).complexity;
        let lb = concat_bounds(n, 1, 4);
        assert!(c.c1 > lb.c1 && c.c2 > lb.c2, "n={n}: {c}");
    }
}

/// Recursive doubling matches the circulant algorithm exactly on powers
/// of two (both optimal), while the circulant also covers every other n.
#[test]
fn circulant_matches_recursive_doubling_on_powers_of_two() {
    for d in 1..7u32 {
        let n = 1usize << d;
        let b = 6;
        let rd = ScheduleStats::of(&ConcatAlgorithm::RecursiveDoubling.plan(n, b, 1)).complexity;
        let bc =
            ScheduleStats::of(&ConcatAlgorithm::Bruck(Preference::Rounds).plan(n, b, 1)).complexity;
        assert_eq!(rd, bc, "n={n}");
    }
}

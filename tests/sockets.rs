//! The full algorithm stack over the real-I/O Unix-socket transport:
//! transports are invisible to algorithms, results and metrics identical
//! to the channel substrate.

#![cfg(unix)]

use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::collectives::verify;
use bruck::model::partition::Preference;
use bruck::net::{Cluster, ClusterConfig, SocketCluster};

#[test]
fn index_over_sockets() {
    let n = 8;
    let b = 512;
    let cfg = ClusterConfig::new(n);
    for algo in [
        IndexAlgorithm::BruckRadix(2),
        IndexAlgorithm::BruckRadix(4),
        IndexAlgorithm::Direct,
    ] {
        let out = SocketCluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, b);
            algo.run(ep, &input, b)
        })
        .unwrap_or_else(|e| panic!("{} over sockets: {e}", algo.name()));
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(
                result,
                &verify::index_expected(rank, n, b),
                "{}",
                algo.name()
            );
        }
    }
}

#[test]
fn concat_over_sockets_multiport() {
    let n = 10;
    let b = 64;
    let cfg = ClusterConfig::new(n).with_ports(3);
    let out = SocketCluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), b);
        ConcatAlgorithm::Bruck(Preference::Rounds).run(ep, &input)
    })
    .unwrap();
    let expected = verify::concat_expected(n, b);
    for r in &out.results {
        assert_eq!(r, &expected);
    }
}

#[test]
fn metrics_agree_across_transports() {
    let n = 6;
    let b = 128;
    let cfg = ClusterConfig::new(n);
    let body = |ep: &mut bruck::net::Endpoint| {
        let input = verify::index_input(ep.rank(), n, b);
        IndexAlgorithm::BruckRadix(3).run(ep, &input, b)
    };
    let sock = SocketCluster::run(&cfg, body).unwrap();
    let chan = Cluster::run(&cfg, body).unwrap();
    assert_eq!(sock.results, chan.results);
    assert_eq!(
        sock.metrics.global_complexity(),
        chan.metrics.global_complexity()
    );
    assert!((sock.virtual_makespan() - chan.virtual_makespan()).abs() < 1e-12);
}

#[test]
fn large_blocks_over_sockets_fragment_transparently() {
    // Each phase-2 message well beyond one fragment.
    let n = 4;
    let b = 48 * 1024;
    let cfg = ClusterConfig::new(n).with_timeout(std::time::Duration::from_secs(30));
    let out = SocketCluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, b);
        IndexAlgorithm::BruckRadix(2).run(ep, &input, b)
    })
    .unwrap();
    for (rank, result) in out.results.iter().enumerate() {
        assert_eq!(result, &verify::index_expected(rank, n, b));
    }
}

//! Failure injection through the full stack: dead ranks and dropped
//! messages must surface as clean errors from the collectives — never
//! hangs, never silent corruption.

use std::time::Duration;

use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::collectives::verify;
use bruck::model::partition::Preference;
use bruck::net::{Cluster, ClusterConfig, FaultPlan, NetError};

fn faulty_cfg(n: usize, faults: FaultPlan) -> ClusterConfig {
    ClusterConfig::new(n)
        .with_timeout(Duration::from_millis(200))
        .with_faults(faults)
}

#[test]
fn index_with_dead_rank_errors_out() {
    let n = 6;
    let cfg = faulty_cfg(n, FaultPlan::new().kill_rank_after(3, 1));
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, 4);
        IndexAlgorithm::BruckRadix(2).run(ep, &input, 4)
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Killed { rank: 3, .. } | NetError::Timeout { .. }
        ),
        "unexpected error: {err:?}"
    );
}

#[test]
fn concat_with_dead_rank_errors_out() {
    let n = 8;
    let cfg = faulty_cfg(n, FaultPlan::new().kill_rank_after(0, 0));
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), 4);
        ConcatAlgorithm::Bruck(Preference::Rounds).run(ep, &input)
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Killed { rank: 0, .. } | NetError::Timeout { .. }
        ),
        "unexpected error: {err:?}"
    );
}

#[test]
fn dropped_message_is_detected_not_corrupted() {
    let n = 5;
    // Drop one mid-algorithm message of the Bruck index (round 1).
    let cfg = faulty_cfg(n, FaultPlan::new().drop_message(2, 4, 1));
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, 4);
        IndexAlgorithm::BruckRadix(2).run(ep, &input, 4)
    })
    .unwrap_err();
    // Rank 4 stalls waiting for the dropped message; downstream ranks
    // cascade into timeouts of their own, and the first error by rank
    // order is reported — any timeout is the correct observable outcome.
    assert!(matches!(err, NetError::Timeout { .. }), "{err:?}");
}

#[test]
fn gather_bcast_survives_no_faults_under_short_timeout() {
    // Control: the same short timeout without faults completes fine.
    let n = 8;
    let cfg = faulty_cfg(n, FaultPlan::new());
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), 4);
        ConcatAlgorithm::GatherBroadcast.run(ep, &input)
    })
    .unwrap();
    let expected = verify::concat_expected(n, 4);
    for r in &out.results {
        assert_eq!(r, &expected);
    }
}

#[test]
fn fault_in_last_round_of_concat() {
    // Kill a rank right before the partitioned last round: phase-1
    // progress must not mask the failure.
    let n = 10; // k = 3 ⇒ d = 2: one phase-1 round, then the last round
    let cfg = ClusterConfig::new(n)
        .with_ports(3)
        .with_timeout(Duration::from_millis(200))
        .with_faults(FaultPlan::new().kill_rank_after(7, 1));
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), 3);
        ConcatAlgorithm::Bruck(Preference::Rounds).run(ep, &input)
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Killed { rank: 7, .. } | NetError::Timeout { .. }
        ),
        "{err:?}"
    );
}

//! Failure injection through the full stack: dead ranks, dropped
//! messages, and probabilistic wire faults must surface as clean errors
//! from the collectives — never hangs, never silent corruption — and the
//! reliability sublayer must heal what is healable.

use std::time::Duration;

use bruck::collectives::api::{alltoall, alltoall_resilient, Tuning};
use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::collectives::verify;
use bruck::model::partition::Preference;
use bruck::net::{Cluster, ClusterConfig, FaultPlan, NetError, Reliability};

fn faulty_cfg(n: usize, faults: FaultPlan) -> ClusterConfig {
    ClusterConfig::new(n)
        .with_timeout(Duration::from_millis(200))
        .with_faults(faults)
}

#[test]
fn index_with_dead_rank_errors_out() {
    let n = 6;
    let cfg = faulty_cfg(n, FaultPlan::new().kill_rank_after(3, 1));
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, 4);
        IndexAlgorithm::BruckRadix(2).run(ep, &input, 4)
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Killed { rank: 3, .. } | NetError::Timeout { .. }
        ),
        "unexpected error: {err:?}"
    );
}

#[test]
fn concat_with_dead_rank_errors_out() {
    let n = 8;
    let cfg = faulty_cfg(n, FaultPlan::new().kill_rank_after(0, 0));
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), 4);
        ConcatAlgorithm::Bruck(Preference::Rounds).run(ep, &input)
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Killed { rank: 0, .. } | NetError::Timeout { .. }
        ),
        "unexpected error: {err:?}"
    );
}

#[test]
fn dropped_message_is_detected_not_corrupted() {
    let n = 5;
    // Drop one mid-algorithm message of the Bruck index (round 1).
    let cfg = faulty_cfg(n, FaultPlan::new().drop_message(2, 4, 1));
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, 4);
        IndexAlgorithm::BruckRadix(2).run(ep, &input, 4)
    })
    .unwrap_err();
    // Rank 4 stalls waiting for the dropped message; ranks downstream of
    // the stall may reach their own deadlines in the same poll window, so
    // the root cause is *a* timeout (never corruption, never a hang) —
    // which exact waiter wins the tie is scheduling-dependent.
    assert!(matches!(err, NetError::Timeout { .. }), "{err:?}");
}

#[test]
fn gather_bcast_survives_no_faults_under_short_timeout() {
    // Control: the same short timeout without faults completes fine.
    let n = 8;
    let cfg = faulty_cfg(n, FaultPlan::new());
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), 4);
        ConcatAlgorithm::GatherBroadcast.run(ep, &input)
    })
    .unwrap();
    let expected = verify::concat_expected(n, 4);
    for r in &out.results {
        assert_eq!(r, &expected);
    }
}

/// The ISSUE's first demo: alltoall over a 5% lossy wire completes
/// bit-correct via retransmission, and the retry counters prove the
/// reliability layer actually worked.
#[test]
fn alltoall_over_lossy_wire_heals_by_retransmission() {
    let n = 8;
    let block = 16;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().with_seed(0xB10C).with_loss(0.05))
        .with_reliability(Reliability::default());
    let tuning = Tuning::default();
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        // Several repetitions: enough physical transmissions that the 5%
        // loss rate fires with overwhelming probability.
        let mut last = Vec::new();
        for _ in 0..4 {
            last = alltoall(ep, &input, block, &tuning)?;
        }
        Ok(last)
    })
    .unwrap();
    for (rank, result) in out.results.iter().enumerate() {
        assert_eq!(
            result,
            &verify::index_expected(rank, n, block),
            "rank {rank} corrupted under loss"
        );
    }
    let link = out.metrics.link_totals();
    assert!(
        link.injected_losses > 0,
        "the plan never actually dropped anything"
    );
    assert!(
        link.retransmits > 0,
        "losses occurred but nothing was retransmitted"
    );
    assert_eq!(out.metrics.total_retransmits(), link.retransmits);
}

#[test]
fn alltoall_over_duplicating_corrupting_wire_is_bit_correct() {
    let n = 6;
    let block = 8;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(
            FaultPlan::new()
                .with_seed(7)
                .with_loss(0.03)
                .with_duplication(0.05)
                .with_corruption(0.05),
        )
        .with_reliability(Reliability::default());
    let tuning = Tuning::default();
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        let mut last = Vec::new();
        for _ in 0..4 {
            last = alltoall(ep, &input, block, &tuning)?;
        }
        Ok(last)
    })
    .unwrap();
    for (rank, result) in out.results.iter().enumerate() {
        assert_eq!(result, &verify::index_expected(rank, n, block));
    }
    let link = out.metrics.link_totals();
    assert!(link.injected_corruptions > 0 || link.injected_dups > 0);
    assert_eq!(
        link.corrupt_dropped, link.injected_corruptions,
        "every corrupted frame must be caught by its checksum"
    );
}

/// Without the reliability sublayer, corruption must surface as a
/// `Corrupt` error (the root cause), never as silently wrong bytes.
#[test]
fn corruption_without_reliability_is_detected() {
    let n = 4;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_millis(500))
        .with_faults(FaultPlan::new().with_seed(3).with_corruption(0.3));
    let tuning = Tuning::default();
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, 32);
        let mut last = Vec::new();
        for _ in 0..8 {
            last = alltoall(ep, &input, 32, &tuning)?;
        }
        Ok(last)
    })
    .unwrap_err();
    assert!(matches!(err, NetError::Corrupt { .. }), "{err:?}");
}

/// The ISSUE's second demo, part 1: a killed rank yields one consistent
/// cluster-wide verdict — the killed rank reports `Killed`, every
/// survivor reports the same `RanksFailed`, nobody hangs or times out.
#[test]
fn killed_rank_yields_consistent_ranks_failed_on_all_survivors() {
    let n = 6;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(2, 1));
    let report = Cluster::try_run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, 4);
        IndexAlgorithm::BruckRadix(2).run(ep, &input, 4)
    });
    assert_eq!(report.failed, vec![2]);
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        let err = outcome.as_ref().unwrap_err();
        if rank == 2 {
            assert!(matches!(err, NetError::Killed { rank: 2, .. }), "{err:?}");
        } else {
            assert_eq!(
                err,
                &NetError::RanksFailed { ranks: vec![2] },
                "survivor {rank} disagrees on the verdict"
            );
        }
    }
    // Root-cause aggregation: the kill, not any reaction to it.
    let (_, cause) = report.root_cause().unwrap();
    assert!(matches!(cause, NetError::Killed { rank: 2, .. }));
}

/// The ISSUE's second demo, part 2: `run_resilient` shrinks to the
/// survivors and completes the collective among them.
#[test]
fn run_resilient_completes_among_survivors() {
    let n = 6;
    let block = 4;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(2, 1));
    let tuning = Tuning::default();
    let resilient = Cluster::run_resilient(&cfg, 3, |ep, view| {
        // The body re-plans for whatever size it is given: the radix is
        // re-tuned and the input rebuilt for the dense survivor ranks.
        let m = ep.size();
        let input = verify::index_input(ep.rank(), m, block);
        let data = alltoall(ep, &input, block, &tuning)?;
        Ok((view.attempt, data))
    })
    .unwrap();
    assert_eq!(resilient.survivors, vec![0, 1, 3, 4, 5]);
    assert_eq!(resilient.attempts, 2);
    let m = resilient.survivors.len();
    for (dense, (attempt, data)) in resilient.output.results.iter().enumerate() {
        assert_eq!(*attempt, 1, "success must come from the retry attempt");
        assert_eq!(data, &verify::index_expected(dense, m, block));
    }
}

/// In-run recovery: survivors shrink the communicator and retry inside
/// the same cluster run (`alltoall_resilient`), with epoch-tagged
/// attempts isolating stale traffic.
#[test]
fn alltoall_resilient_shrinks_in_run() {
    let n = 6;
    let block = 4;
    let victim = 2;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(victim, 1));
    let tuning = Tuning::default();
    let report = Cluster::try_run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        alltoall_resilient(ep, &input, block, &tuning, 3)
    });
    assert_eq!(report.failed, vec![victim]);
    let survivors: Vec<usize> = (0..n).filter(|&r| r != victim).collect();
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        if rank == victim {
            let err = outcome.as_ref().unwrap_err();
            assert!(matches!(err, NetError::Killed { rank: 2, .. }), "{err:?}");
            continue;
        }
        let res = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed to recover in-run: {e:?}"));
        assert_eq!(res.survivors, survivors);
        // Most ranks abort the full-membership attempt and succeed on the
        // retry; a rank scheduled late enough may first observe the dead
        // set after the kill and join the survivor epoch directly.
        assert!(res.attempts <= 2, "attempts = {}", res.attempts);
        // Survivor-dense correctness: block i came from survivors[i].
        let me = survivors.iter().position(|&s| s == rank).unwrap();
        for (i, &src) in survivors.iter().enumerate() {
            let got = &res.data[i * block..(i + 1) * block];
            let full = verify::index_input(src, n, block);
            assert_eq!(
                got,
                &full[rank * block..(rank + 1) * block],
                "rank {rank} (dense {me}) got wrong block from {src}"
            );
        }
    }
}

/// Rank i's non-uniform payload for rank j: (i + j + 1) % 13 bytes —
/// some spans empty, all sizes distinct enough to catch layout slips.
fn v_payload(i: usize, j: usize) -> Vec<u8> {
    (0..(i + j + 1) % 13)
        .map(|t| verify::content_byte(i, j, t))
        .collect()
}

/// In-run recovery for the non-uniform family: `alltoallv_resilient`
/// shrinks to the survivors, repacks the variable-size blocks dense
/// under a fresh layout, and completes bit-correct — the PR 6 v-ops get
/// the same epoch-tagged shrink treatment as the uniform all-to-all.
#[test]
fn alltoallv_resilient_shrinks_in_run() {
    use bruck::collectives::vops::alltoallv_resilient;
    use bruck::collectives::vops::VLayout;
    let n = 6;
    let victim = 2;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(victim, 1));
    let tuning = Tuning::default();
    let report = Cluster::try_run(&cfg, |ep| {
        let bufs: Vec<Vec<u8>> = (0..n).map(|j| v_payload(ep.rank(), j)).collect();
        let layout = VLayout::from_counts(&bufs.iter().map(Vec::len).collect::<Vec<_>>());
        alltoallv_resilient(ep, &bufs.concat(), &layout, &tuning, 3)
    });
    assert_eq!(report.failed, vec![victim]);
    let survivors: Vec<usize> = (0..n).filter(|&r| r != victim).collect();
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        if rank == victim {
            let err = outcome.as_ref().unwrap_err();
            assert!(matches!(err, NetError::Killed { rank: 2, .. }), "{err:?}");
            continue;
        }
        let res = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed to recover in-run: {e:?}"));
        assert_eq!(res.survivors, survivors);
        assert!(res.attempts <= 2, "attempts = {}", res.attempts);
        // Survivor-dense correctness: span i came from survivors[i].
        for (i, &src) in survivors.iter().enumerate() {
            assert_eq!(
                res.layout.slice(&res.data, i),
                &v_payload(src, rank)[..],
                "rank {rank} got wrong span from {src}"
            );
        }
    }
}

/// `FailFast` turns a below-quorum shrink into an immediate
/// `RanksFailed` on every survivor instead of a degraded completion;
/// with the quorum satisfied the same run shrinks and completes.
#[test]
fn alltoallv_resilient_honours_fail_fast_quorum() {
    use bruck::collectives::vops::alltoallv_resilient_with_policy;
    use bruck::collectives::vops::VLayout;
    use bruck::net::RecoveryPolicy;
    let n = 4;
    let victim = 1;
    for (min_quorum, expect_ok) in [(n, false), (n - 1, true)] {
        let cfg = ClusterConfig::new(n)
            .with_timeout(Duration::from_secs(5))
            .with_faults(FaultPlan::new().kill_rank_after(victim, 1));
        let tuning = Tuning::default();
        let report = Cluster::try_run(&cfg, move |ep| {
            let bufs: Vec<Vec<u8>> = (0..n).map(|j| v_payload(ep.rank(), j)).collect();
            let layout = VLayout::from_counts(&bufs.iter().map(Vec::len).collect::<Vec<_>>());
            alltoallv_resilient_with_policy(
                ep,
                &bufs.concat(),
                &layout,
                &tuning,
                3,
                RecoveryPolicy::FailFast { min_quorum },
            )
        });
        for (rank, outcome) in report.outcomes.iter().enumerate() {
            if rank == victim {
                continue;
            }
            match outcome {
                Ok(res) if expect_ok => {
                    assert_eq!(res.survivors, vec![0, 2, 3], "quorum {min_quorum}");
                }
                Err(NetError::RanksFailed { ranks }) if !expect_ok => {
                    assert!(ranks.contains(&victim), "quorum {min_quorum}: {ranks:?}");
                }
                other => panic!("rank {rank} quorum {min_quorum} expect_ok={expect_ok}: {other:?}"),
            }
        }
    }
}

/// The fault plan is transport-agnostic: the same wire-fault injection
/// and reliability stack wrap the Unix-socket transport, so a lossy
/// kernel path heals the same way the channel path does.
#[cfg(unix)]
#[test]
fn socket_transport_honours_fault_plan() {
    use bruck::net::SocketCluster;
    let n = 4;
    let block = 8;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(10))
        .with_faults(FaultPlan::new().with_seed(0x50C).with_loss(0.08))
        .with_reliability(Reliability::default());
    let tuning = Tuning::default();
    let out = SocketCluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        // Enough repetitions that the 8% loss rate fires with
        // overwhelming probability (ack arrival order perturbs the
        // per-transmission draws, so this is a tail bound, not a fixed
        // replay).
        let mut last = Vec::new();
        for _ in 0..8 {
            last = alltoall(ep, &input, block, &tuning)?;
        }
        Ok(last)
    })
    .unwrap();
    for (rank, result) in out.results.iter().enumerate() {
        assert_eq!(result, &verify::index_expected(rank, n, block));
    }
    assert!(out.metrics.link_totals().injected_losses > 0);
    assert!(out.metrics.total_retransmits() > 0);
}

/// A killed rank on the socket transport surfaces as the same clean,
/// root-caused error as on channels.
#[cfg(unix)]
#[test]
fn socket_transport_kill_is_root_caused() {
    use bruck::net::SocketCluster;
    let n = 4;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(1, 0));
    let err = SocketCluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, 4);
        IndexAlgorithm::BruckRadix(2).run(ep, &input, 4)
    })
    .unwrap_err();
    assert!(matches!(err, NetError::Killed { rank: 1, .. }), "{err:?}");
}

/// Rank 0 is special: it roots the calibration gather/broadcast and
/// every cached-fit verdict. Killing it mid-run must still shrink
/// cleanly — the survivor cluster re-roots calibration at its own dense
/// rank 0 (the old rank 1) and completes. `n = 7` additionally makes the
/// survivor count 6, not a power of the radix, so the retry's re-planned
/// schedule exercises the non-power shrink path.
#[test]
fn run_resilient_survives_death_of_calibration_root() {
    use bruck::collectives::autotune::calibrated_fit;
    let n = 7;
    let block = 4;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(0, 1));
    let tuning = Tuning::default();
    let resilient = Cluster::run_resilient(&cfg, 3, |ep, _view| {
        // The calibration collective is rooted at (dense) rank 0 — on
        // the retry that is a different physical rank than the corpse.
        let fit = calibrated_fit(ep)?;
        let m = ep.size();
        let input = verify::index_input(ep.rank(), m, block);
        let data = alltoall(ep, &input, block, &tuning)?;
        Ok((fit.model, data))
    })
    .unwrap();
    assert_eq!(resilient.survivors, vec![1, 2, 3, 4, 5, 6]);
    let m = resilient.survivors.len();
    for (dense, (_model, data)) in resilient.output.results.iter().enumerate() {
        assert_eq!(data, &verify::index_expected(dense, m, block));
    }
}

/// The in-run variant of root death: `alltoall_resilient` shrinks around
/// a dead rank 0 without restarting the cluster, at a survivor count
/// (6 of 7) that is not a power of the radix.
#[test]
fn alltoall_resilient_survives_death_of_rank_zero() {
    let n = 7;
    let block = 4;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(0, 1));
    let tuning = Tuning::default();
    let report = Cluster::try_run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        alltoall_resilient(ep, &input, block, &tuning, 3)
    });
    assert_eq!(report.failed, vec![0]);
    let survivors: Vec<usize> = (1..n).collect();
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        if rank == 0 {
            let err = outcome.as_ref().unwrap_err();
            assert!(matches!(err, NetError::Killed { rank: 0, .. }), "{err:?}");
            continue;
        }
        let res = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed to recover: {e:?}"));
        assert_eq!(res.survivors, survivors);
        for (i, &src) in survivors.iter().enumerate() {
            let got = &res.data[i * block..(i + 1) * block];
            let full = verify::index_input(src, n, block);
            assert_eq!(
                got,
                &full[rank * block..(rank + 1) * block],
                "rank {rank} got wrong block from {src}"
            );
        }
    }
}

#[test]
fn fault_in_last_round_of_concat() {
    // Kill a rank right before the partitioned last round: phase-1
    // progress must not mask the failure.
    let n = 10; // k = 3 ⇒ d = 2: one phase-1 round, then the last round
    let cfg = ClusterConfig::new(n)
        .with_ports(3)
        .with_timeout(Duration::from_millis(200))
        .with_faults(FaultPlan::new().kill_rank_after(7, 1));
    let err = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), 3);
        ConcatAlgorithm::Bruck(Preference::Rounds).run(ep, &input)
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Killed { rank: 7, .. } | NetError::Timeout { .. }
        ),
        "{err:?}"
    );
}

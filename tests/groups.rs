//! Collectives inside process groups — the paper's "arbitrary and dynamic
//! subsets of processors" (§1.2). Every algorithm runs unchanged through
//! the `Comm` abstraction, including disjoint groups concurrently and the
//! classic 2D-grid row/column decomposition.

use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::collectives::verify;
use bruck::model::partition::Preference;
use bruck::net::{Cluster, ClusterConfig, Endpoint, Group};

#[test]
fn index_inside_a_strided_group() {
    // Global ranks {1, 3, 5, 7, 9} of an 11-rank cluster run a 5-way
    // index among themselves.
    let n_global = 11;
    let group = Group::strided(1, 2, 10); // 1,3,5,7,9
    assert_eq!(group.len(), 5);
    let cfg = ClusterConfig::new(n_global);
    let b = 4;
    let out = Cluster::run(&cfg, |ep| {
        let Some(grank) = group.rank_of(Endpoint::rank(ep)) else {
            return Ok(None);
        };
        let mut gc = group.bind(ep);
        let input = verify::index_input(grank, 5, b);
        let result = IndexAlgorithm::BruckRadix(2).run(&mut gc, &input, b)?;
        Ok(Some(result))
    })
    .unwrap();
    for (global, result) in out.results.iter().enumerate() {
        match group.rank_of(global) {
            Some(grank) => {
                assert_eq!(
                    result.as_ref().unwrap(),
                    &verify::index_expected(grank, 5, b)
                );
            }
            None => assert!(result.is_none()),
        }
    }
}

#[test]
fn concat_inside_a_range_group() {
    let group = Group::range(2, 7);
    let cfg = ClusterConfig::new(12).with_ports(2);
    let out = Cluster::run(&cfg, |ep| {
        let Some(grank) = group.rank_of(Endpoint::rank(ep)) else {
            return Ok(None);
        };
        let mut gc = group.bind(ep);
        let input = verify::concat_input(grank, 3);
        let result = ConcatAlgorithm::Bruck(Preference::Rounds).run(&mut gc, &input)?;
        Ok(Some(result))
    })
    .unwrap();
    let expected = verify::concat_expected(7, 3);
    for (global, result) in out.results.iter().enumerate() {
        if group.rank_of(global).is_some() {
            assert_eq!(result.as_ref().unwrap(), &expected);
        }
    }
}

#[test]
fn disjoint_groups_run_collectives_concurrently() {
    // Three disjoint groups of sizes 3/4/5 each run their own index.
    let groups = [Group::range(0, 3), Group::range(3, 4), Group::range(7, 5)];
    let cfg = ClusterConfig::new(12);
    let b = 2;
    let out = Cluster::run(&cfg, |ep| {
        let global = Endpoint::rank(ep);
        let group = groups.iter().find(|g| g.rank_of(global).is_some()).unwrap();
        let grank = group.rank_of(global).unwrap();
        let gn = group.len();
        let mut gc = group.bind(ep);
        let input = verify::index_input(grank, gn, b);
        let result = IndexAlgorithm::BruckRadix(2).run(&mut gc, &input, b)?;
        Ok((gn, grank, result))
    })
    .unwrap();
    for (gn, grank, result) in &out.results {
        assert_eq!(result, &verify::index_expected(*grank, *gn, b));
    }
}

#[test]
fn grid_row_then_column_allgather_reaches_everyone() {
    // 3×4 process grid: allgather along rows, then along columns, equals
    // a global allgather — the standard 2D decomposition of collectives.
    let rows = 3usize;
    let cols = 4usize;
    let n = rows * cols;
    let b = 2;
    let cfg = ClusterConfig::new(n).with_ports(2);
    let out = Cluster::run(&cfg, |ep| {
        let global = Endpoint::rank(ep);
        let my_row = global / cols;
        let my_col = global % cols;
        let row_group = Group::range(my_row * cols, cols);
        let col_group = Group::strided(my_col, cols, n);

        // Row phase: gather the row's blocks.
        let mine = verify::concat_input(global, b);
        let row_all = {
            let mut gc = row_group.bind(ep);
            ConcatAlgorithm::Bruck(Preference::Rounds).run(&mut gc, &mine)?
        };
        // Column phase: gather the row-concatenations down each column.
        let full = {
            let mut gc = col_group.bind(ep);
            ConcatAlgorithm::Bruck(Preference::Rounds).run(&mut gc, &row_all)?
        };
        Ok(full)
    })
    .unwrap();
    // The column phase stacks row-blocks in row order, so the result is
    // the global concatenation in rank order.
    let expected = verify::concat_expected(n, b);
    for (rank, r) in out.results.iter().enumerate() {
        assert_eq!(r, &expected, "rank {rank}");
    }
}

#[test]
fn group_of_one_is_a_no_op() {
    let group = Group::new(vec![2]);
    let cfg = ClusterConfig::new(4);
    let out = Cluster::run(&cfg, |ep| {
        if Endpoint::rank(ep) == 2 {
            let mut gc = group.bind(ep);
            let input = verify::index_input(0, 1, 8);
            return IndexAlgorithm::BruckRadix(2).run(&mut gc, &input, 8);
        }
        Ok(Vec::new())
    })
    .unwrap();
    assert_eq!(out.results[2], verify::index_input(0, 1, 8));
}

#[test]
fn vops_and_reductions_work_in_groups() {
    let group = Group::strided(0, 2, 10); // 0,2,4,6,8
    let cfg = ClusterConfig::new(10);
    let out = Cluster::run(&cfg, |ep| {
        let Some(grank) = group.rank_of(Endpoint::rank(ep)) else {
            return Ok(None);
        };
        let mut gc = group.bind(ep);
        let mine: Vec<f64> = vec![grank as f64; 3];
        let sum = bruck::collectives::reduce::allreduce_via_concat(
            &mut gc,
            &mine,
            bruck::collectives::reduce::ReduceOp::Sum,
        )?;
        let mut gathered = Vec::new();
        let layout = bruck::collectives::vops::allgatherv_into(
            &mut gc,
            &vec![grank as u8; grank + 1],
            &mut gathered,
        )?;
        let blocks: Vec<Vec<u8>> = (0..layout.len())
            .map(|src| layout.slice(&gathered, src).to_vec())
            .collect();
        Ok(Some((sum, blocks)))
    })
    .unwrap();
    for (global, r) in out.results.iter().enumerate() {
        if let Some((sum, blocks)) = r {
            assert_eq!(global % 2, 0);
            assert!(sum.iter().all(|&s| (s - 10.0).abs() < 1e-9)); // 0+1+2+3+4
            for (g, blk) in blocks.iter().enumerate() {
                assert_eq!(blk, &vec![g as u8; g + 1]);
            }
        }
    }
}

//! Chaos soak: seeded random fault plans against every collective.
//!
//! The contract under chaos is *fail-stop or succeed-exact*: with the
//! reliability sublayer on, every run either returns bit-correct results
//! or a clean error well inside the timeout — never a hang, never
//! silently corrupted bytes. Fault plans are drawn from the same
//! dependency-free xorshift generator as `tests/proptests.rs`, so every
//! case replays from its seed.

use std::time::Duration;

use bruck::collectives::api::{allgather, alltoall, Tuning};
use bruck::collectives::verify;
use bruck::net::{Cluster, ClusterConfig, FaultPlan, NetError, Reliability};

/// Deterministic xorshift64 over half-open ranges.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(2654435761).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// A rate in `[0, max)`.
    fn rate(&mut self, max: f64) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * max
    }
}

/// A seeded random wire-fault plan: mild rates the reliability layer is
/// expected to fully heal.
fn chaos_plan(g: &mut Gen) -> FaultPlan {
    let mut plan = FaultPlan::new().with_seed(g.next());
    if g.flag() {
        plan = plan.with_loss(g.rate(0.08));
    }
    if g.flag() {
        plan = plan.with_duplication(g.rate(0.08));
    }
    if g.flag() {
        plan = plan.with_corruption(g.rate(0.08));
    }
    if g.flag() {
        plan = plan.with_delay(g.rate(0.1), 1e-5);
    }
    plan
}

const CASES: u64 = 24;

/// Every collective over a random lossy/duplicating/corrupting wire is
/// bit-correct with reliability on — or fails cleanly, never hangs.
#[test]
fn collectives_survive_random_wire_chaos() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let n = g.pick(2, 10);
        let block = g.pick(1, 33);
        let plan = chaos_plan(&mut g);
        let cfg = ClusterConfig::new(n)
            .with_timeout(Duration::from_secs(10))
            .with_faults(plan)
            .with_reliability(Reliability::default());
        let tuning = Tuning::default();
        let out = Cluster::run(&cfg, |ep| {
            let a2a_in = verify::index_input(ep.rank(), n, block);
            let a2a = alltoall(ep, &a2a_in, block, &tuning)?;
            let ag_in = verify::concat_input(ep.rank(), block);
            let ag = allgather(ep, &ag_in, &tuning)?;
            Ok((a2a, ag))
        })
        .unwrap_or_else(|e| panic!("seed {seed} (n={n} b={block}): {e:?}"));
        for (rank, (a2a, ag)) in out.results.iter().enumerate() {
            assert_eq!(
                a2a,
                &verify::index_expected(rank, n, block),
                "seed {seed}: alltoall corrupted at rank {rank}"
            );
            assert_eq!(
                ag,
                &verify::concat_expected(n, block),
                "seed {seed}: allgather corrupted at rank {rank}"
            );
        }
    }
}

/// Chaos plus a random kill: the run must fail *cleanly* — a root-caused
/// `Killed` or a consistent `RanksFailed`, inside the timeout, never a
/// hang and never an Ok with wrong bytes.
#[test]
fn random_kill_under_chaos_fails_clean() {
    for seed in 0..CASES {
        let mut g = Gen::new(0xDEAD ^ seed);
        let n = g.pick(3, 9);
        let block = g.pick(1, 17);
        let victim = g.pick(0, n);
        let round = g.pick(0, 3) as u64;
        let plan = chaos_plan(&mut g).kill_rank_after(victim, round);
        let cfg = ClusterConfig::new(n)
            .with_timeout(Duration::from_secs(10))
            .with_faults(plan)
            .with_reliability(Reliability::default());
        let tuning = Tuning::default();
        let report = Cluster::try_run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, block);
            alltoall(ep, &input, block, &tuning)
        });
        for (rank, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                // A rank may legitimately finish before the kill lands
                // (e.g. the victim dies after its last round) — but bytes
                // must then be exact.
                Ok(data) => assert_eq!(
                    data,
                    &verify::index_expected(rank, n, block),
                    "seed {seed}: rank {rank} returned corrupt data"
                ),
                Err(
                    NetError::Killed { .. }
                    | NetError::RanksFailed { .. }
                    | NetError::Timeout { .. },
                ) => {}
                Err(e) => panic!("seed {seed}: rank {rank} unclean failure {e:?}"),
            }
        }
        // The victim must be in the cluster's verdict unless it finished
        // its whole collective before its kill round arrived.
        if report.outcomes[victim].is_err() {
            assert!(
                report.failed.contains(&victim),
                "seed {seed}: dead rank {victim} missing from verdict {:?}",
                report.failed
            );
        }
    }
}

//! Property-style and stress tests for the extension operations:
//! v-variants, reductions, scans, mixed-radix, hierarchical, and the
//! appendix-faithful ports.
//!
//! Parameters sweep a fixed number of deterministic pseudo-random cases
//! from a local xorshift generator — reproducible, dependency-free.

use bruck::collectives::appendix::{concat_appendix_b, index_appendix_a};
use bruck::collectives::index::{hierarchical, mixed};
use bruck::collectives::reduce::{
    allreduce_halving_doubling, allreduce_via_concat, reduce_scatter, ReduceOp,
};
use bruck::collectives::scan::{exscan, scan};
use bruck::collectives::verify;
#[allow(deprecated)]
use bruck::collectives::vops::{allgatherv, alltoallv};
use bruck::net::{Cluster, ClusterConfig};

/// Deterministic xorshift64 over half-open ranges.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(2654435761).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn op(&mut self) -> ReduceOp {
        [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max][self.pick(0, 3)]
    }
}

const CASES: u64 = 40;

/// alltoallv with arbitrary per-pair sizes delivers exactly what was
/// addressed.
#[test]
#[allow(deprecated)]
fn alltoallv_random_sizes() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, k, salt) = (g.pick(1, 12), g.pick(1, 4), g.next());
        let size = |i: usize, j: usize| ((salt as usize).wrapping_mul(31) + i * 7 + j * 13) % 50;
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let bufs: Vec<Vec<u8>> = (0..n)
                .map(|j| {
                    (0..size(ep.rank(), j))
                        .map(|t| verify::content_byte(ep.rank(), j, t))
                        .collect()
                })
                .collect();
            alltoallv(ep, &bufs)
        })
        .unwrap();
        for (rank, received) in out.results.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                let expected: Vec<u8> = (0..size(src, rank))
                    .map(|t| verify::content_byte(src, rank, t))
                    .collect();
                assert_eq!(buf, &expected, "n={n} k={k} rank={rank} src={src}");
            }
        }
    }
}

/// allgatherv with arbitrary per-rank sizes.
#[test]
#[allow(deprecated)]
fn allgatherv_random_sizes() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, k, salt) = (g.pick(1, 16), g.pick(1, 5), g.next());
        let size = |i: usize| ((salt as usize).wrapping_mul(17) + i * 11) % 40;
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let mine: Vec<u8> = (0..size(ep.rank()))
                .map(|t| verify::content_byte(ep.rank(), 0, t))
                .collect();
            allgatherv(ep, &mine)
        })
        .unwrap();
        for received in &out.results {
            for (src, buf) in received.iter().enumerate() {
                let expected: Vec<u8> = (0..size(src))
                    .map(|t| verify::content_byte(src, 0, t))
                    .collect();
                assert_eq!(buf, &expected, "n={n} k={k} src={src}");
            }
        }
    }
}

/// The two allreduce strategies agree with a local fold.
#[test]
fn allreduce_strategies_agree() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (d, m_scale, op) = (g.pick(1, 4) as u32, g.pick(1, 4), g.op());
        let n = 1usize << d;
        let m = n * m_scale;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let mine: Vec<f64> = (0..m).map(|i| ((ep.rank() * m + i) as f64).sin()).collect();
            let a = allreduce_via_concat(ep, &mine, op)?;
            let b = allreduce_halving_doubling(ep, &mine, op)?;
            Ok((a, b))
        })
        .unwrap();
        let expected: Vec<f64> = (0..m)
            .map(|i| {
                (0..n)
                    .map(|r| ((r * m + i) as f64).sin())
                    .reduce(|a, b| op.apply(a, b))
                    .unwrap()
            })
            .collect();
        for (a, b) in &out.results {
            for ((x, y), e) in a.iter().zip(b).zip(&expected) {
                assert!((x - e).abs() < 1e-9, "n={n} m={m} op={op:?}");
                assert!((y - e).abs() < 1e-9, "n={n} m={m} op={op:?}");
            }
        }
    }
}

/// reduce_scatter segments stitch back into the full reduction.
#[test]
fn reduce_scatter_covers() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, m_scale, op) = (g.pick(1, 10), g.pick(1, 4), g.op());
        let m = n * m_scale;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let mine: Vec<f64> = (0..m).map(|i| (ep.rank() + i) as f64).collect();
            reduce_scatter(ep, &mine, op)
        })
        .unwrap();
        let full: Vec<f64> = (0..m)
            .map(|i| {
                (0..n)
                    .map(|r| (r + i) as f64)
                    .reduce(|a, b| op.apply(a, b))
                    .unwrap()
            })
            .collect();
        let stitched: Vec<f64> = out.results.iter().flatten().copied().collect();
        assert_eq!(stitched.len(), full.len(), "n={n} m={m} op={op:?}");
        for (g_, e) in stitched.iter().zip(&full) {
            assert!((g_ - e).abs() < 1e-9, "n={n} m={m} op={op:?}");
        }
    }
}

/// scan/exscan against the sequential prefix.
#[test]
fn scans_match_sequential() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, m, op) = (g.pick(1, 14), g.pick(1, 6), g.op());
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let mine: Vec<f64> = (0..m).map(|i| (ep.rank() * m + i) as f64 * 0.5).collect();
            let inc = scan(ep, &mine, op)?;
            let exc = exscan(ep, &mine, op)?;
            Ok((inc, exc))
        })
        .unwrap();
        let data = |r: usize| -> Vec<f64> { (0..m).map(|i| (r * m + i) as f64 * 0.5).collect() };
        for (rank, (inc, exc)) in out.results.iter().enumerate() {
            let mut want = data(0);
            for r in 1..=rank {
                op.fold_into(&mut want, &data(r));
            }
            for (got, e) in inc.iter().zip(&want) {
                assert!((got - e).abs() < 1e-9, "rank {rank}");
            }
            match exc {
                None => assert_eq!(rank, 0),
                Some(exc) => {
                    let mut want = data(0);
                    for r in 1..rank {
                        op.fold_into(&mut want, &data(r));
                    }
                    for (got, e) in exc.iter().zip(&want) {
                        assert!((got - e).abs() < 1e-9, "rank {rank}");
                    }
                }
            }
        }
    }
}

/// Mixed-radix index correct for random covering vectors.
#[test]
fn mixed_radix_random_vectors() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, b) = (g.pick(2, 16), g.pick(0, 6));
        let radices = [g.pick(2, 5), g.pick(2, 5), g.pick(2, 5), 16]; // final 16 guarantees coverage
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, b);
            mixed::run(ep, &input, b, &radices)
        })
        .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(
                result,
                &verify::index_expected(rank, n, b),
                "n={n} b={b} rank={rank}"
            );
        }
    }
}

/// Hierarchical alltoall correct for random node factorizations.
#[test]
fn hierarchical_random_shapes() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (nodes, node_size, b, rl, rr) = (
            g.pick(1, 5),
            g.pick(1, 5),
            g.pick(0, 6),
            g.pick(2, 5),
            g.pick(2, 5),
        );
        let n = nodes * node_size;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, b);
            hierarchical::run(ep, &input, b, node_size, rl, rr)
        })
        .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(
                result,
                &verify::index_expected(rank, n, b),
                "n={n} b={b} rank={rank}"
            );
        }
    }
}

/// The appendix ports agree with the oracle over shuffled process
/// arrays.
#[test]
fn appendix_ports_random() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (n, r, rot) = (g.pick(2, 12), g.pick(2, 12), g.pick(0, 12));
        // A rotated process array (a simple derangement family).
        let a: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let my_rank = a.iter().position(|&p| p == ep.rank()).unwrap();
            let input = verify::index_input(my_rank, n, 2);
            let idx = index_appendix_a(ep, &input, 2, &a, r)?;
            let cat = concat_appendix_b(ep, &verify::concat_input(my_rank, 3), &a)?;
            Ok((my_rank, idx, cat))
        })
        .unwrap();
        for (my_rank, idx, cat) in &out.results {
            assert_eq!(
                idx,
                &verify::index_expected(*my_rank, n, 2),
                "n={n} r={r} rot={rot}"
            );
            assert_eq!(cat, &verify::concat_expected(n, 3), "n={n} r={r} rot={rot}");
        }
    }
}

/// Stress: the full stack at 96 ranks (beyond the paper's 64), one shot.
#[test]
fn stress_96_ranks() {
    let n = 96;
    let b = 8;
    let cfg = ClusterConfig::new(n).with_ports(2);
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, b);
        bruck::collectives::index::bruck::run(ep, &input, b, 3)
    })
    .unwrap();
    for (rank, result) in out.results.iter().enumerate() {
        assert_eq!(result, &verify::index_expected(rank, n, b));
    }
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), b);
        bruck::collectives::concat::bruck::run(ep, &input, Default::default())
    })
    .unwrap();
    let expected = verify::concat_expected(n, b);
    for result in &out.results {
        assert_eq!(result, &expected);
    }
    // Round-optimality holds out here too.
    let c = out.metrics.global_complexity().unwrap();
    assert_eq!(c.c1, bruck::model::bounds::concat_bounds(n, 2, b).c1);
}

//! Healing beyond shrink: the recovery lifecycle
//! (member → suspected → evicted → quarantined → rejoined) end to end.
//!
//! The tentpole contract: a killed-and-restarted rank is re-admitted at
//! the next collective boundary within its flap-damped quarantine
//! window, the next collective completes bit-correct across the
//! restored full group, and a rank that keeps flapping earns an
//! exponentially growing quarantine until it stays out. The soak runs
//! hundreds of seeded chaos schedules with the rejoin policy enabled;
//! any hang, byte error, or view disagreement fails with a minimized
//! reproducer persisted to disk for `bruckctl chaos --replay`.

use std::time::{Duration, Instant};

use bruck::collectives::api::{alltoall, Tuning};
use bruck::collectives::verify;
use bruck::net::{
    ChaosSchedule, Cluster, ClusterConfig, FaultPlan, NetError, RecoveryPolicy, Reliability,
};

/// Aggressive reliability tuning so detection (and therefore eviction)
/// lands in milliseconds — same discipline as the liveness soak.
fn tight_reliability() -> Reliability {
    Reliability {
        rto: Duration::from_millis(2),
        max_rto: Duration::from_millis(20),
        max_retries: 8,
        ..Reliability::default()
    }
    .with_probing(Duration::from_millis(2), 3)
}

fn rejoin_cfg(n: usize, plan: FaultPlan, policy: RecoveryPolicy) -> ClusterConfig {
    ClusterConfig::new(n)
        .with_timeout(Duration::from_millis(500))
        .with_faults(plan)
        .with_reliability(tight_reliability())
        .with_quarantine(Duration::from_millis(2))
        .with_recovery(policy)
}

/// The collective body every test runs: a tuned alltoall at whatever
/// width the attempt's view provides, verified bit-exact in place.
fn verified_alltoall(ep: &mut bruck::net::Endpoint, block: usize) -> Result<(), NetError> {
    let m = ep.size();
    let input = verify::index_input(ep.rank(), m, block);
    let data = alltoall(ep, &input, block, &Tuning::default())?;
    if data != verify::index_expected(ep.rank(), m, block) {
        return Err(NetError::App("wrong result".into()));
    }
    Ok(())
}

/// The headline lifecycle, across cluster sizes: kill → shrink verdict
/// → restart → quarantine window → rejoin at the attempt boundary →
/// bit-correct collective across the restored full group.
#[test]
fn killed_rank_rejoins_and_full_group_completes() {
    for n in [4usize, 8, 16] {
        let cfg = rejoin_cfg(
            n,
            FaultPlan::new().kill_rank_after(1, 0),
            RecoveryPolicy::WaitForRejoin {
                budget: Duration::from_secs(5),
            },
        );
        let resilient = Cluster::run_resilient(&cfg, 3, |ep, view| {
            verified_alltoall(ep, 4)?;
            Ok(view.view_id)
        })
        .unwrap_or_else(|e| panic!("n={n}: {e:?}"));
        // The killed rank came back: full width, not a shrink.
        assert_eq!(resilient.survivors, (0..n).collect::<Vec<_>>(), "n={n}");
        assert_eq!(resilient.rejoined, vec![1], "n={n}");
        assert!(resilient.attempts >= 2, "n={n}: kill must cost an attempt");
        // One evict + one admit: the view advanced exactly twice and
        // every rank of the successful attempt saw the same view id.
        assert_eq!(resilient.view_id, 2, "n={n}");
        assert!(
            resilient.output.results.iter().all(|&v| v == 2),
            "n={n}: view disagreement: {:?}",
            resilient.output.results
        );
        let ms = resilient.output.metrics.membership;
        assert_eq!((ms.evictions, ms.rejoins), (1, 1), "n={n}");
        assert_eq!(ms.quarantines, 1, "n={n}");
        assert_eq!(ms.view_changes, 2, "n={n}");
    }
}

/// `ShrinkOnly` (the default) never waits: the killed rank stays out
/// and the survivors complete dense — exactly the pre-rejoin behavior.
#[test]
fn shrink_only_policy_stays_shrunk() {
    let n = 8;
    let cfg = rejoin_cfg(
        n,
        FaultPlan::new().kill_rank_after(1, 0),
        RecoveryPolicy::ShrinkOnly,
    );
    let resilient = Cluster::run_resilient(&cfg, 3, |ep, _view| verified_alltoall(ep, 4)).unwrap();
    let expect: Vec<usize> = (0..n).filter(|&r| r != 1).collect();
    assert_eq!(resilient.survivors, expect);
    assert_eq!(resilient.rejoined, Vec::<usize>::new());
    assert_eq!(resilient.view_id, 1, "one eviction, no admission");
    let ms = resilient.output.metrics.membership;
    assert_eq!((ms.evictions, ms.rejoins), (1, 0));
}

/// `FailFast` converts a below-quorum shrink into an immediate
/// `RanksFailed`; with the quorum still satisfied it shrinks normally.
#[test]
fn fail_fast_policy_enforces_quorum() {
    let n = 4;
    // Quorum n: losing anyone is fatal.
    let cfg = rejoin_cfg(
        n,
        FaultPlan::new().kill_rank_after(1, 0),
        RecoveryPolicy::FailFast { min_quorum: n },
    );
    let err = Cluster::run_resilient(&cfg, 3, |ep, _view| verified_alltoall(ep, 4)).unwrap_err();
    assert!(
        matches!(&err, NetError::RanksFailed { ranks } if ranks.contains(&1)),
        "{err:?}"
    );
    // Quorum n-1: one death is tolerated, the survivors complete.
    let cfg = rejoin_cfg(
        n,
        FaultPlan::new().kill_rank_after(1, 0),
        RecoveryPolicy::FailFast { min_quorum: n - 1 },
    );
    let resilient = Cluster::run_resilient(&cfg, 3, |ep, _view| verified_alltoall(ep, 4)).unwrap();
    assert_eq!(resilient.survivors, vec![0, 2, 3]);
}

/// Flap damping: a rank whose kill re-fires on every attempt rejoins
/// once (first quarantine fits the budget), flaps again, and is then
/// held out by the doubled window — the run completes without it and
/// the damping counters record the history.
#[test]
fn flapping_rank_is_quarantined_out() {
    let n = 4;
    let base = Duration::from_millis(40);
    let budget = Duration::from_millis(60);
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_millis(500))
        .with_faults(FaultPlan::new().kill_rank_recurring(1, 0))
        .with_reliability(tight_reliability())
        .with_quarantine(base)
        .with_recovery(RecoveryPolicy::WaitForRejoin { budget });
    let resilient = Cluster::run_resilient(&cfg, 4, |ep, _view| verified_alltoall(ep, 4)).unwrap();
    // Attempt 0: kill → evict (flap 1, 40 ms ≤ 60 ms budget) → rejoin.
    // Attempt 1: the recurring kill re-fires → evict (flap 2, 80 ms >
    // budget) → held out. Attempt 2: survivors complete without it.
    assert_eq!(resilient.survivors, vec![0, 2, 3]);
    assert_eq!(resilient.attempts, 3);
    assert_eq!(
        resilient.rejoined,
        Vec::<usize>::new(),
        "the flapper must not be in the final view"
    );
    let ms = resilient.output.metrics.membership;
    assert_eq!(ms.evictions, 2, "two flaps, two evictions");
    assert_eq!(ms.rejoins, 1, "only the first quarantine fit the budget");
    assert_eq!(ms.quarantines, 2);
    assert_eq!(resilient.view_id, 3, "evict + admit + evict");
}

/// `BRUCK_CHAOS_SEED` narrows the soak to one seed for replaying a CI
/// failure; unset, the full range runs.
fn soak_seeds() -> std::ops::Range<u64> {
    match std::env::var("BRUCK_CHAOS_SEED") {
        Ok(s) => {
            let seed: u64 = s
                .parse()
                .unwrap_or_else(|e| panic!("BRUCK_CHAOS_SEED={s}: {e}"));
            seed..seed + 1
        }
        Err(_) => 0..SCHEDULES_PER_SHAPE,
    }
}

/// Persist a failing schedule for `bruckctl chaos --replay` and return
/// the path (best effort — the panic message is the primary artifact).
fn persist_reproducer(s: &ChaosSchedule, label: &str) -> String {
    let path = format!("target/chaos-repro-{label}-n{}-seed{}.tsv", s.n, s.seed);
    match std::fs::write(&path, bruck::sched::chaos_to_tsv(s)) {
        Ok(()) => path,
        Err(e) => format!("<unwritable {path}: {e}>"),
    }
}

/// Longest one schedule may take before it counts as a hang: up to
/// three attempts against the 3 s cluster deadline plus quarantine
/// waits and scheduling slack.
const HANG_BUDGET: Duration = Duration::from_secs(15);

const SCHEDULES_PER_SHAPE: u64 = 200;

/// Run one chaos schedule restart-style (shrink + rejoin across
/// attempts) and check every recovery invariant. `None` means clean.
fn run_rejoin_schedule(s: &ChaosSchedule) -> Option<String> {
    let block = 4;
    // Rejoin policy exactly when the schedule marks its kill as
    // restartable — the soak covers both policies across seeds.
    let policy = if s.has_rejoin() {
        RecoveryPolicy::WaitForRejoin {
            budget: Duration::from_millis(100),
        }
    } else {
        RecoveryPolicy::ShrinkOnly
    };
    let cfg = ClusterConfig::new(s.n)
        .with_timeout(Duration::from_millis(500))
        .with_faults(s.plan())
        .with_reliability(tight_reliability())
        .with_deadline(Duration::from_secs(3))
        .with_quarantine(Duration::from_millis(5))
        .with_recovery(policy);
    let started = Instant::now();
    let outcome = Cluster::run_resilient(&cfg, 3, |ep, view| {
        verified_alltoall(ep, block)?;
        Ok(view.view_id)
    });
    if started.elapsed() > HANG_BUDGET {
        return Some(format!(
            "no-hang: run took {:?} (budget {HANG_BUDGET:?})",
            started.elapsed()
        ));
    }
    match outcome {
        Ok(res) => {
            // Per-view consistency: every rank of the successful attempt
            // reported the same view id, and the bookkeeping agrees with
            // itself (rejoined ⊆ survivors, counters match the log).
            if res.output.results.windows(2).any(|w| w[0] != w[1]) {
                return Some(format!(
                    "view-agreement: ranks disagree on the view id: {:?}",
                    res.output.results
                ));
            }
            if let Some(&bad) = res.rejoined.iter().find(|r| !res.survivors.contains(r)) {
                return Some(format!(
                    "membership: rejoined rank {bad} missing from survivors {:?}",
                    res.survivors
                ));
            }
            let ms = res.output.metrics.membership;
            if ms.view_changes != ms.evictions + ms.rejoins {
                return Some(format!(
                    "counters: {} view changes ≠ {} evictions + {} rejoins",
                    ms.view_changes, ms.evictions, ms.rejoins
                ));
            }
            None
        }
        // A structured verdict is an allowed outcome — except a byte
        // error, which the body converts into this specific App error.
        Err(NetError::App(msg)) if msg == "wrong result" => {
            Some("bit-correctness: a completer held wrong bytes".into())
        }
        Err(_) => None,
    }
}

/// The rejoin soak: the PR 5 chaos schedules replayed restart-style
/// with the recovery policy driven by each schedule's rejoin events.
/// Zero tolerance; failures persist a minimized reproducer TSV.
#[test]
fn rejoin_soak_no_hangs_consistent_views() {
    for n in [4usize, 8] {
        for seed in soak_seeds() {
            let schedule = ChaosSchedule::generate(seed, n);
            if let Some(reason) = run_rejoin_schedule(&schedule) {
                let minimized = schedule.minimized(|c| run_rejoin_schedule(c).is_some());
                let path = persist_reproducer(&minimized, "rejoin");
                panic!(
                    "rejoin violation at seed {seed}, n {n}: {reason}\n\
                     minimized reproducer written to {path}\n\
                     replay with: cargo run -p bruck-bench --bin bruckctl -- \
                     chaos --replay {path}\n{minimized}"
                );
            }
        }
    }
}

/// The UDS transport heals the same way: kill on real sockets, rejoin
/// at the boundary with a fresh incarnation's socket paths, complete
/// full-width. (The per-incarnation bind logic is additionally covered
/// by unit tests in `bruck-net`.)
#[cfg(unix)]
#[test]
fn uds_killed_rank_rejoins_full_group() {
    use bruck::net::SocketCluster;
    let n = 4;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().kill_rank_after(2, 0))
        .with_quarantine(Duration::from_millis(2))
        .with_recovery(RecoveryPolicy::WaitForRejoin {
            budget: Duration::from_secs(2),
        });
    let resilient =
        SocketCluster::run_resilient(&cfg, 3, |ep, _view| verified_alltoall(ep, 8)).unwrap();
    assert_eq!(resilient.survivors, vec![0, 1, 2, 3]);
    assert_eq!(resilient.rejoined, vec![2]);
    assert!(resilient.attempts >= 2);
}

//! Liveness under chaos: deadlines, stragglers, partitions.
//!
//! The contract this suite enforces is the tentpole of the
//! deadline-aware collectives work: every collective either completes
//! bit-correct or returns a *structured* error on every survivor within
//! a bounded wall-clock window — no hangs, ever, whatever the schedule
//! of partitions, stalls, ack losses, and crashes. The soak enumerates
//! hundreds of seeded [`ChaosSchedule`]s per cluster shape; a violation
//! is greedily shrunk to a 1-minimal schedule and printed for replay.

use std::time::{Duration, Instant};

use bruck::collectives::api::{alltoall, alltoall_deadline, alltoall_resilient, Tuning};
use bruck::collectives::verify;
use bruck::net::{ChaosSchedule, Cluster, ClusterConfig, Comm, FaultPlan, NetError, Reliability};

/// Aggressive reliability tuning for chaos runs: millisecond RTOs and a
/// tight probe budget, so stall escalation lands in tens of
/// milliseconds and a 400-schedule soak stays fast.
fn tight_reliability() -> Reliability {
    Reliability {
        rto: Duration::from_millis(2),
        max_rto: Duration::from_millis(20),
        max_retries: 8,
        ..Reliability::default()
    }
    .with_probing(Duration::from_millis(2), 3)
}

fn chaos_cfg(n: usize, plan: FaultPlan) -> ClusterConfig {
    ClusterConfig::new(n)
        .with_timeout(Duration::from_millis(500))
        .with_faults(plan)
        .with_reliability(tight_reliability())
        .with_deadline(Duration::from_secs(3))
}

/// Longest a single schedule may take wall-clock before it counts as a
/// hang: the 3 s cluster deadline, plus a stalled rank sleeping through
/// it, plus scheduling slack. The deadline layer is what keeps real
/// runs far below this.
const HANG_BUDGET: Duration = Duration::from_secs(12);

/// Execute one chaos schedule and check every liveness invariant.
/// Returns `Some(reason)` on a violation — deterministic for a fixed
/// schedule, so the minimizer can replay it.
fn run_schedule(s: &ChaosSchedule) -> Option<String> {
    let n = s.n;
    let block = 4;
    let started = Instant::now();
    let report = Cluster::try_run(&chaos_cfg(n, s.plan()), |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        alltoall_resilient(ep, &input, block, &Tuning::default(), 4)
    });
    if started.elapsed() > HANG_BUDGET {
        return Some(format!(
            "no-hang: run took {:?} (budget {HANG_BUDGET:?})",
            started.elapsed()
        ));
    }
    // Survivor agreement: every rank that completed must hold the same
    // membership (the epoch argument: same detector version ⇒ same dead
    // set), and its bytes must be exactly the survivor-dense all-to-all.
    let mut agreed: Option<Vec<usize>> = None;
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        let res = match outcome {
            Ok(res) => res,
            // Structured failure is an allowed outcome — the invariant
            // is only that it *is* structured (an Err, not a hang) and
            // that completers agree.
            Err(_) => continue,
        };
        match &agreed {
            None => agreed = Some(res.survivors.clone()),
            Some(prev) if *prev != res.survivors => {
                return Some(format!(
                    "verdict-agreement: rank {rank} completed with survivors \
                     {:?}, another with {prev:?}",
                    res.survivors
                ));
            }
            Some(_) => {}
        }
        let Some(me) = res.survivors.iter().position(|&x| x == rank) else {
            return Some(format!(
                "membership: completer {rank} is not one of its own survivors {:?}",
                res.survivors
            ));
        };
        for (i, &src) in res.survivors.iter().enumerate() {
            let got = &res.data[i * block..(i + 1) * block];
            let full = verify::index_input(src, n, block);
            if got != &full[rank * block..(rank + 1) * block] {
                return Some(format!(
                    "bit-correctness: rank {rank} (dense {me}) holds a wrong \
                     block from rank {src}"
                ));
            }
        }
    }
    None
}

const SCHEDULES_PER_SHAPE: u64 = 200;

/// `BRUCK_CHAOS_SEED` narrows the soak to one seed for replaying a CI
/// failure; unset, the full range runs.
fn soak_seeds() -> std::ops::Range<u64> {
    match std::env::var("BRUCK_CHAOS_SEED") {
        Ok(s) => {
            let seed: u64 = s
                .parse()
                .unwrap_or_else(|e| panic!("BRUCK_CHAOS_SEED={s}: {e}"));
            seed..seed + 1
        }
        Err(_) => 0..SCHEDULES_PER_SHAPE,
    }
}

/// The soak: hundreds of seeded schedules per shape, each mixing wire
/// rates with partitions, directed cuts, stalls, and kills. Zero
/// tolerance: any hang, byte error, or membership disagreement fails
/// the suite with a minimized replay schedule, persisted as a TSV for
/// `bruckctl chaos --replay`.
#[test]
fn chaos_soak_no_hangs_consistent_verdicts_correct_bytes() {
    for n in [4usize, 8] {
        for seed in soak_seeds() {
            let schedule = ChaosSchedule::generate(seed, n);
            if let Some(reason) = run_schedule(&schedule) {
                let minimized = schedule.minimized(|c| run_schedule(c).is_some());
                let path = format!("target/chaos-repro-liveness-n{n}-seed{seed}.tsv");
                let path = match std::fs::write(&path, bruck::sched::chaos_to_tsv(&minimized)) {
                    Ok(()) => path,
                    Err(e) => format!("<unwritable {path}: {e}>"),
                };
                panic!(
                    "liveness violation at seed {seed}, n {n}: {reason}\n\
                     minimized reproducer written to {path}\n\
                     minimized schedule for replay:\n{minimized}"
                );
            }
        }
    }
}

/// An asymmetric partition — `0 → 1` severed, `1 → 0` intact — must
/// converge on ONE cluster-consistent verdict: both ends accuse each
/// other (rank 0 gets no acks; rank 1's probes go unanswered because
/// the replies are cut), the detector's arbiter honours exactly one
/// accusation, and the survivors complete the collective among
/// themselves.
#[test]
fn asymmetric_partition_yields_one_consistent_verdict() {
    let n = 4;
    let block = 4;
    let cfg = chaos_cfg(n, FaultPlan::new().cut_link(0, 1, 0));
    let report = Cluster::try_run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        alltoall_resilient(ep, &input, block, &Tuning::default(), 4)
    });
    assert_eq!(
        report.failed.len(),
        1,
        "exactly one end of the cut may die, got {:?}",
        report.failed
    );
    let dead = report.failed[0];
    assert!(dead == 0 || dead == 1, "verdict named a bystander: {dead}");
    let survivors: Vec<usize> = (0..n).filter(|&r| r != dead).collect();
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        if rank == dead {
            assert!(outcome.is_err(), "the dead end must not report success");
            continue;
        }
        let res = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed: {e:?}"));
        assert_eq!(res.survivors, survivors, "survivor {rank} disagrees");
        for (i, &src) in survivors.iter().enumerate() {
            let got = &res.data[i * block..(i + 1) * block];
            let full = verify::index_input(src, n, block);
            assert_eq!(got, &full[rank * block..(rank + 1) * block]);
        }
    }
}

/// A stall shorter than the probe budget is *slow, not dead*: the
/// watchdog's probes go unanswered during the pause, but the first
/// intact frame after it resets the strikes — nobody is escalated and
/// the collective completes bit-correct on the full membership.
#[test]
fn short_stall_is_healed_not_escalated() {
    let n = 4;
    let block = 4;
    // 30 ms pause against a probe budget of 25 ms + 50 ms + 100 ms of
    // doubling patience: the watchdog must ride it out.
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_faults(FaultPlan::new().stall_rank(1, 1, Duration::from_millis(30)))
        .with_reliability(Reliability::default().with_probing(Duration::from_millis(25), 3));
    let report = Cluster::try_run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        alltoall(ep, &input, block, &Tuning::default())
    });
    assert_eq!(report.failed, Vec::<usize>::new(), "a pause is not a death");
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        let data = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {rank} failed on a mere stall: {e:?}"));
        assert_eq!(data, &verify::index_expected(rank, n, block));
    }
}

/// A stall long enough to exhaust the probe budget gets the same
/// cluster-consistent treatment as a crash: the sleeper is escalated to
/// the failure detector, survivors shrink and complete, and the sleeper
/// itself wakes into the structured verdict (not a hang, not an `Ok`).
#[test]
fn long_stall_escalates_like_a_crash() {
    let n = 4;
    let block = 4;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_millis(500))
        .with_faults(FaultPlan::new().stall_rank(1, 1, Duration::from_millis(400)))
        .with_reliability(tight_reliability());
    let report = Cluster::try_run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        alltoall_resilient(ep, &input, block, &Tuning::default(), 4)
    });
    assert_eq!(report.failed, vec![1], "the sleeper must be escalated");
    let survivors = vec![0, 2, 3];
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        if rank == 1 {
            let err = outcome.as_ref().unwrap_err();
            assert!(
                matches!(err, NetError::RanksFailed { .. } | NetError::Timeout { .. }),
                "the sleeper must wake into a structured verdict, got {err:?}"
            );
            continue;
        }
        let res = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed: {e:?}"));
        assert_eq!(res.survivors, survivors);
    }
}

/// With the watchdog disabled and retries effectively unbounded, a full
/// partition would block forever on the per-round timeout ladder — the
/// armed cluster deadline is the only thing bounding the run, and it
/// must fail every rank with the structured `DeadlineExceeded` within
/// the budget (plus slack), never a hang.
#[test]
fn deadline_bounds_a_partitioned_run() {
    let n = 4;
    let block = 4;
    let budget = Duration::from_millis(150);
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(30))
        .with_faults(FaultPlan::new().with_partition(vec![0, 1], 0))
        .with_reliability(
            Reliability {
                max_retries: u32::MAX,
                ..Reliability::default()
            }
            .with_probing(Duration::from_millis(25), 0),
        )
        .with_deadline(budget);
    let started = Instant::now();
    let report = Cluster::try_run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        alltoall(ep, &input, block, &Tuning::default())
    });
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline failed to bound the run: {elapsed:?}"
    );
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        let err = outcome.as_ref().unwrap_err();
        assert!(
            matches!(err, NetError::DeadlineExceeded { .. }),
            "rank {rank}: expected DeadlineExceeded, got {err:?}"
        );
    }
}

/// The per-collective deadline API: a budget the plan cannot possibly
/// meet fails fast with the structured verdict (per-round sub-budget
/// below one adaptive RTO), and a generous budget arms, completes
/// bit-correct, and disarms.
#[test]
fn alltoall_deadline_is_structured_and_disarms() {
    let n = 4;
    let block = 4;
    let cfg = ClusterConfig::new(n)
        .with_timeout(Duration::from_secs(5))
        .with_reliability(Reliability::default());
    let report = Cluster::try_run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        // Infeasible: whole-call budget far below one RTO per round.
        let err =
            alltoall_deadline(ep, &input, block, &Tuning::default(), Duration::ZERO).unwrap_err();
        assert!(matches!(err, NetError::DeadlineExceeded { .. }), "{err:?}");
        assert_eq!(
            ep.deadline_remaining(),
            None,
            "a failed call must leave the deadline disarmed"
        );
        // Feasible: completes bit-correct and disarms on the way out.
        let data = alltoall_deadline(
            ep,
            &input,
            block,
            &Tuning::default(),
            Duration::from_secs(5),
        )?;
        assert_eq!(ep.deadline_remaining(), None);
        Ok(data)
    });
    for (rank, outcome) in report.outcomes.iter().enumerate() {
        let data = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {rank} failed: {e:?}"));
        assert_eq!(data, &verify::index_expected(rank, n, block));
    }
}

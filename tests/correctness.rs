//! Cross-crate correctness sweep: every algorithm, against the oracle and
//! against each other, over a grid of `(n, b, k)`.

use bruck::collectives::concat::ConcatAlgorithm;
use bruck::collectives::index::IndexAlgorithm;
use bruck::collectives::verify;
use bruck::model::partition::Preference;
use bruck::net::{Cluster, ClusterConfig};

fn index_results(algo: IndexAlgorithm, n: usize, b: usize, k: usize) -> Vec<Vec<u8>> {
    let cfg = ClusterConfig::new(n).with_ports(k);
    Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, b);
        algo.run(ep, &input, b)
    })
    .unwrap_or_else(|e| panic!("{} n={n} b={b} k={k}: {e}", algo.name()))
    .results
}

fn concat_results(algo: ConcatAlgorithm, n: usize, b: usize, k: usize) -> Vec<Vec<u8>> {
    let cfg = ClusterConfig::new(n).with_ports(k);
    Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), b);
        algo.run(ep, &input)
    })
    .unwrap_or_else(|e| panic!("{} n={n} b={b} k={k}: {e}", algo.name()))
    .results
}

#[test]
fn index_all_algorithms_oracle_sweep() {
    for &n in &[2usize, 3, 5, 8, 11, 16] {
        for &b in &[1usize, 7, 32] {
            for &k in &[1usize, 2] {
                let mut algos = vec![
                    IndexAlgorithm::BruckRadix(2),
                    IndexAlgorithm::BruckRadix(3),
                    IndexAlgorithm::BruckRadix(n),
                    IndexAlgorithm::Direct,
                ];
                if n.is_power_of_two() {
                    algos.push(IndexAlgorithm::Pairwise);
                    if k == 1 {
                        algos.push(IndexAlgorithm::Hypercube);
                    }
                }
                for algo in algos {
                    let results = index_results(algo, n, b, k);
                    for (rank, r) in results.iter().enumerate() {
                        assert_eq!(
                            r,
                            &verify::index_expected(rank, n, b),
                            "{} n={n} b={b} k={k} rank={rank}",
                            algo.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn concat_all_algorithms_oracle_sweep() {
    for &n in &[2usize, 3, 5, 8, 13, 16, 21] {
        for &b in &[1usize, 6, 33] {
            for &k in &[1usize, 2, 3] {
                let mut algos = vec![
                    ConcatAlgorithm::Bruck(Preference::Rounds),
                    ConcatAlgorithm::Bruck(Preference::Bytes),
                    ConcatAlgorithm::GatherBroadcast,
                ];
                if k == 1 {
                    algos.push(ConcatAlgorithm::Ring);
                    if n.is_power_of_two() {
                        algos.push(ConcatAlgorithm::RecursiveDoubling);
                    }
                }
                let expected = verify::concat_expected(n, b);
                for algo in algos {
                    let results = concat_results(algo, n, b, k);
                    for (rank, r) in results.iter().enumerate() {
                        assert_eq!(
                            r,
                            &expected,
                            "{} n={n} b={b} k={k} rank={rank}",
                            algo.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn index_algorithms_agree_with_each_other() {
    let n = 8;
    let b = 5;
    let reference = index_results(IndexAlgorithm::Direct, n, b, 1);
    for algo in [
        IndexAlgorithm::BruckRadix(2),
        IndexAlgorithm::BruckRadix(4),
        IndexAlgorithm::Pairwise,
        IndexAlgorithm::Hypercube,
    ] {
        assert_eq!(index_results(algo, n, b, 1), reference, "{}", algo.name());
    }
}

#[test]
fn large_cluster_matrix_n64() {
    // The paper's machine size: 64 processors — a full (algo, b, k)
    // matrix, not a one-shot. Viable on 1-core CI because the engine's
    // rank-thread gate (BRUCK_MAX_RANK_THREADS) serializes whole runs
    // instead of piling 64-thread clusters on top of each other.
    let n = 64;
    for &b in &[1usize, 16] {
        for &k in &[1usize, 2] {
            for algo in [
                IndexAlgorithm::BruckRadix(2),
                IndexAlgorithm::BruckRadix(4),
                IndexAlgorithm::BruckRadix(8),
                IndexAlgorithm::BruckRadix(64),
                IndexAlgorithm::Pairwise,
            ] {
                let results = index_results(algo, n, b, k);
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(
                        r,
                        &verify::index_expected(rank, n, b),
                        "{} n={n} b={b} k={k} rank={rank}",
                        algo.name()
                    );
                }
            }
        }
    }
    let b = 16;
    let expected = verify::concat_expected(n, b);
    for &k in &[1usize, 2] {
        for algo in [
            ConcatAlgorithm::Bruck(Preference::Rounds),
            ConcatAlgorithm::Bruck(Preference::Bytes),
        ] {
            let results = concat_results(algo, n, b, k);
            for r in &results {
                assert_eq!(r, &expected, "{} n={n} b={b} k={k}", algo.name());
            }
        }
    }
}

#[test]
fn index_with_huge_blocks() {
    let n = 4;
    let b = 1 << 16; // 64 KiB per block
    let results = index_results(IndexAlgorithm::BruckRadix(2), n, b, 1);
    for (rank, r) in results.iter().enumerate() {
        assert_eq!(r, &verify::index_expected(rank, n, b));
    }
}

//! Regression test for the zero-copy hot path: once the buffer pool is
//! warm, steady-state Bruck index rounds draw every data-plane buffer
//! (send staging, receive payloads, phase scratch) from the pool instead
//! of the allocator.
//!
//! The pool counts three events — `allocated` (a fresh heap buffer was
//! created because no shelved one fit), `reused` (an acquire was served
//! from a shelf), and `recycled` (a buffer was returned). The invariant
//! under test: after a prewarm pass stocks the shelves (see
//! [`BufferPool::set_prewarm`](bruck::net::BufferPool::set_prewarm)),
//! further `run_into` iterations leave `allocated` flat while `reused`
//! keeps climbing — deterministically, not just usually.

use bruck::net::PoolStats;
use bruck::prelude::*;

const WARMUP: usize = 3;
const STEADY: usize = 10;

fn steady_state_stats(
    algo: IndexAlgorithm,
    n: usize,
    block: usize,
    ports: usize,
) -> (PoolStats, PoolStats) {
    let cfg = ClusterConfig::new(n).with_ports(ports);
    let out = Cluster::run(&cfg, move |ep| {
        let rank = ep.rank() as u8;
        let sendbuf: Vec<u8> = (0..n * block).map(|i| rank ^ (i % 251) as u8).collect();
        let mut recvbuf = vec![0u8; n * block];
        // Prewarm: every acquire allocates fresh, so the shelves end up
        // stocked to the pass's total demand and later passes can never
        // miss, regardless of how the rank threads interleave.
        ep.pool().set_prewarm(true);
        ep.barrier();
        for _ in 0..WARMUP {
            algo.run_into(ep, &sendbuf, block, &mut recvbuf)?;
            ep.barrier();
        }
        ep.pool().set_prewarm(false);
        // All ranks are past warmup before anyone snapshots, so a stable
        // `allocated` counter really means nobody hit the allocator.
        ep.barrier();
        let warm = ep.pool().stats();
        for _ in 0..STEADY {
            algo.run_into(ep, &sendbuf, block, &mut recvbuf)?;
            ep.barrier();
        }
        // Every rank verifies the collective still computes the transpose;
        // a pool bug that hands out stale bytes would surface here.
        for src in 0..n {
            let blk = &recvbuf[src * block..(src + 1) * block];
            let expect: Vec<u8> = (0..block)
                .map(|k| src as u8 ^ ((ep.rank() * block + k) % 251) as u8)
                .collect();
            assert_eq!(blk, &expect[..], "corrupt block from rank {src}");
        }
        ep.barrier();
        let steady = ep.pool().stats();
        Ok((warm, steady))
    })
    .expect("run failed");
    // The pool is cluster-shared; every rank saw the same counters at the
    // two barriers, so rank 0's snapshots describe the whole cluster.
    out.results[0]
}

#[test]
fn bruck_steady_state_allocates_nothing() {
    for (n, block, ports, radix) in [
        (8usize, 64usize, 1usize, 2usize),
        (6, 96, 2, 3),
        (16, 32, 1, 4),
    ] {
        let (warm, steady) = steady_state_stats(IndexAlgorithm::BruckRadix(radix), n, block, ports);
        assert_eq!(
            steady.allocated,
            warm.allocated,
            "n={n} block={block} r={radix}: steady-state rounds hit the allocator \
             ({} fresh buffers after warmup)",
            steady.allocated - warm.allocated
        );
        assert!(
            steady.reused > warm.reused,
            "n={n} block={block} r={radix}: steady state should be served from the pool"
        );
        assert!(
            steady.recycled > warm.recycled,
            "n={n} block={block} r={radix}: steady state should return buffers to the pool"
        );
    }
}

#[test]
fn direct_and_hypercube_steady_state_allocate_nothing() {
    for algo in [IndexAlgorithm::Direct, IndexAlgorithm::Hypercube] {
        let (warm, steady) = steady_state_stats(algo, 8, 48, 1);
        assert_eq!(steady.allocated, warm.allocated, "{algo:?}");
        assert!(steady.reused > warm.reused, "{algo:?}");
    }
}

/// The non-uniform path under every family member: once warm, repeated
/// `alltoallv_into` calls (metadata concat + payload member) draw all
/// scratch — size rows, the gathered matrix, padded/quota staging,
/// receive payloads — from the pool.
#[test]
fn alltoallv_into_steady_state_allocates_nothing() {
    use bruck::collectives::api::Tuning;
    use bruck::collectives::vops::{alltoallv_into, VLayout, VMethod};

    let n = 8;
    let methods = [
        VMethod::Direct,
        VMethod::Padded { radix: 2 },
        VMethod::TwoPhase {
            radix: 2,
            quota: None,
        },
    ];
    for method in methods {
        let cfg = ClusterConfig::new(n).with_ports(2);
        let out = Cluster::run(&cfg, move |ep| {
            let rank = ep.rank();
            // Skewed sizes: destination 0 is hot, the rest ragged.
            let counts: Vec<usize> = (0..n)
                .map(|j| if j == 0 { 96 } else { 8 + (rank + j) % 16 })
                .collect();
            let layout = VLayout::from_counts(&counts);
            let mut flat = vec![0u8; layout.total()];
            for (i, byte) in flat.iter_mut().enumerate() {
                *byte = (rank ^ (i % 251)) as u8;
            }
            let tuning = Tuning::builder().vmethod(method).build();
            let mut got = Vec::new();
            ep.pool().set_prewarm(true);
            ep.barrier();
            for _ in 0..WARMUP {
                alltoallv_into(ep, &flat, &layout, &tuning, &mut got)?;
                ep.barrier();
            }
            ep.pool().set_prewarm(false);
            ep.barrier();
            let warm = ep.pool().stats();
            for _ in 0..STEADY {
                alltoallv_into(ep, &flat, &layout, &tuning, &mut got)?;
                ep.barrier();
            }
            ep.barrier();
            let steady = ep.pool().stats();
            Ok((warm, steady))
        })
        .expect("run failed");
        let (warm, steady) = out.results[0];
        assert_eq!(
            steady.allocated,
            warm.allocated,
            "{method:?}: steady-state alltoallv_into hit the allocator \
             ({} fresh buffers after warmup)",
            steady.allocated - warm.allocated
        );
        assert!(steady.reused > warm.reused, "{method:?}");
        assert!(steady.recycled > warm.recycled, "{method:?}");
    }
}

#[test]
fn run_metrics_report_pool_activity() {
    let n = 8;
    let block = 64;
    let cfg = ClusterConfig::new(n);
    let out = Cluster::run(&cfg, move |ep| {
        let sendbuf = vec![ep.rank() as u8; n * block];
        let mut recvbuf = vec![0u8; n * block];
        IndexAlgorithm::BruckRadix(2).run_into(ep, &sendbuf, block, &mut recvbuf)?;
        Ok(())
    })
    .expect("run failed");
    let p = out.metrics.pool;
    assert!(p.allocated > 0, "first iteration must populate the pool");
    assert!(p.recycled > 0, "executors must return their scratch: {p:?}");
    assert!(
        p.recycled <= p.allocated + p.reused,
        "cannot recycle more buffers than were acquired: {p:?}"
    );
}

#!/bin/sh
# Lint gate for the workspace: formatting and clippy, both hard-failing.
# POSIX sh — the bench harness spawns it via `sh` (see harness::prerun_check).
#
# Run standalone (`ci/check.sh`) or let the bench harness run it before
# measuring by setting BRUCK_PRERUN_CHECK=1 — benchmarking an unlinted
# tree wastes machine time.
set -eu
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings

# Robustness gate: fault injection, the chaos soak, and the
# sliding-window property suite. Every fault plan is seeded
# (FaultPlan::with_seed / the xorshift case generators in tests/chaos.rs
# and tests/window.rs), so failures replay deterministically from the
# seed printed in the assertion message.
cargo test -q --test faults
cargo test -q --test chaos
cargo test -q --test window

# Autotune gate: the planner must match an exhaustive arg-min over the
# radix family, the calibrator must recover (β, τ) with R² ≥ 0.99, and
# planner-dispatched collectives must verify at n ∈ {4, 8, 16},
# k ∈ {1, 2} with a model fitted live against the transport.
cargo test -q --test autotune

# Liveness gate: 200 seeded chaos schedules per shape (n ∈ {4, 8})
# mixing partitions, stalls, ack loss, and kills, plus the dedicated
# deadline/straggler/partition tests. The suite asserts no-hang
# internally; the hard wall-clock `timeout` is the backstop for the one
# failure mode the suite cannot report on itself — the harness hanging.
# 300 s ≈ 10x the observed soak time on a 1-core CI box.
timeout 300 cargo test -q --test liveness

# Rejoin gate: the full recovery lifecycle — kill, shrink, quarantine,
# flap damping, rejoin at the next collective boundary, bit-correct
# full-group result under all three RecoveryPolicy variants — plus a
# 200-seed rejoin soak per shape with per-view verdict consistency.
# Failing soak iterations persist a minimized TSV reproducer under
# target/ replayable with `bruckctl chaos --replay`. Set
# BRUCK_CHAOS_SEED=<s> to narrow either soak to a single seed when
# bisecting. Same hard-timeout backstop rationale as the liveness gate.
timeout 300 cargo test -q --test rejoin

# V-ops gate: the non-uniform property suite (direct/padded/two-phase/
# auto bit-exact on random ragged, zero-riddled, and hot-spot matrices
# across n ∈ {1,2,5,8,16}, k ∈ {1,2}, plus a fault-injected skewed run
# through run_resilient).
cargo test -q --test vops

# Perf smoke: the pipelined data plane must clear a throughput floor on
# the wire microbench. The floor is ~30% under the slowest alltoall
# pipelined-row throughput observed on a 1-core CI box (545 MB/s at this
# shape; the stop-and-wait-era plane measures ~300-360 MB/s, so a data
# plane regressed to that discipline lands under the floor while normal
# machine noise stays above it). BENCH_pr3.json tracks the full-size
# run. Small shape so the gate stays fast.
cargo build -q --release -p bruck-bench
./target/release/bruckctl bench --n 4 --ports 2 --block 16384 --reps 3 \
    --samples 2 --out /tmp/bruck-bench-smoke.json --min-mbps 380

# Zipf smoke: a short skewed sweep at the PR 6 shape (n=8, k=2). Every
# lap is verified bit-exactly inside run_skew_matrix, so this gates the
# whole skewed data path (metadata exchange, padded/two-phase executors,
# planner dispatch) end to end through the real uds transport. Small
# reps/samples keep it to a few seconds; BENCH_pr6.json tracks the full
# 16x8 matrix.
./target/release/bruckctl bench --skew 0,0.5,1.0,1.5 --n 8 --ports 2 \
    --block 256 --reps 4 --samples 2 --out /tmp/bruck-skew-smoke.json

# TCP + scale gate: the event-driven fabric's integration suites (fault
# injection over real loopback streams, hierarchical plans at n = 64,
# the n = 128 thread-multiplexing claim), then a one-rep scale sweep —
# flat vs two-level over the TCP fabric with the watchdog and deadline
# armed, every lap verified bit-exactly inside run_scale_matrix.
# BRUCK_SCALE_MAX_N caps the sweep (default 128 here so the gate stays
# fast; raise it to 1024 to reproduce the full BENCH_pr9.json matrix).
# Hard wall-clock timeout as the no-hang backstop, same rationale as
# the liveness gate.
timeout 300 cargo test -q --test tcp --test hierarchical
BRUCK_SCALE_MAX_N="${BRUCK_SCALE_MAX_N:-128}" timeout 300 \
    ./target/release/bruckctl bench --scale --reps 1 \
    --out /tmp/bruck-scale-smoke.json

# TCP recovery gate: the connection-healing lifecycle over real
# loopback streams — mid-collective stream kill → reconnect →
# byte-identical to the faultless run, budget-exhausted handshake
# blackhole → consistent node-level eviction, and a 100-seed
# connection-chaos soak with per-view verdict consistency.
# BRUCK_SCALE_MAX_N caps the eviction matrix (128 here skips the n=256
# leg); BRUCK_CHAOS_SEED narrows the soak when bisecting. Failing soak
# iterations persist a minimized TSV reproducer under target/
# replayable with `bruckctl chaos --transport tcp --replay`. Hard
# wall-clock timeout as the no-hang backstop (~20x the observed suite
# time on a 1-core CI box). The bruckctl smoke then drives one
# generated socket-chaos schedule end to end through the CLI path the
# reproducers replay through.
BRUCK_SCALE_MAX_N="${BRUCK_SCALE_MAX_N:-128}" timeout 300 \
    cargo test -q --test tcp_recovery
timeout 120 ./target/release/bruckctl chaos --transport tcp \
    --n 64 --node-size 8 --block 8 --seed 7

#!/bin/sh
# Lint gate for the workspace: formatting and clippy, both hard-failing.
# POSIX sh — the bench harness spawns it via `sh` (see harness::prerun_check).
#
# Run standalone (`ci/check.sh`) or let the bench harness run it before
# measuring by setting BRUCK_PRERUN_CHECK=1 — benchmarking an unlinted
# tree wastes machine time.
set -eu
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings

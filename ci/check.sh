#!/bin/sh
# Lint gate for the workspace: formatting and clippy, both hard-failing.
# POSIX sh — the bench harness spawns it via `sh` (see harness::prerun_check).
#
# Run standalone (`ci/check.sh`) or let the bench harness run it before
# measuring by setting BRUCK_PRERUN_CHECK=1 — benchmarking an unlinted
# tree wastes machine time.
set -eu
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings

# Robustness gate: fault injection and the chaos soak. Every fault plan
# is seeded (FaultPlan::with_seed / the xorshift case generator in
# tests/chaos.rs), so failures replay deterministically from the seed
# printed in the assertion message.
cargo test -q --test faults
cargo test -q --test chaos
